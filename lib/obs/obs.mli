(** Unified tracing and metrics for both schedulers.

    The paper's headline claim is about {e where time goes} — controller
    and process-continuation operations are linear in control points, not
    continuation size — and this library turns the process tree's
    lifecycle into analyzable data: a typed, timestamped,
    sequence-numbered event stream ({!Event}) covering
    spawn/exit, run slices, park/wake, capture/reinstate, channel
    send/recv and deadlock, plus counters and fixed-bucket histograms
    ({!Metrics}).

    Both schedulers ([Pcont_pstack.Concur.run] and [Pcont_sched.Sched.run])
    accept an optional [?obs] handle.  With no handle installed the
    instrumentation is a single pattern match per site — no event is
    allocated, no clock is advanced.  With a handle installed, every
    event carries:

    - a {e sequence number}: dense, starting at 0, incremented per event;
    - a {e virtual timestamp}: the cumulative scheduler work (machine
      transitions for the pstack scheduler, run slices for the native
      one), advanced deterministically by the scheduler.

    Neither consults the wall clock, so two runs with the same seed
    produce byte-identical traces — traces are diffable and goldens
    stay stable.

    Events are fanned out to pluggable {!section-sinks}: human-readable
    text (the [psi --trace] stream), JSONL, and Chrome trace-event JSON
    loadable in [chrome://tracing] or Perfetto, where each process
    renders as a track with run slices and park gaps.

    Exported JSONL traces are not write-only: [Pcont_obs.Trace]
    re-ingests them into typed events and [Pcont_obs.Analysis] checks
    their invariants, computes causal reports and diffs two traces (the
    [ptrace] CLI). *)

(** {1 JSON utilities}

    A minimal JSON layer shared by the sinks, the benchmark harness's
    [--json] writer, and the trace self-checks.  No external dependency. *)

module Json : sig
  val escape : string -> string
  (** JSON string-escape the bytes of [s] (no surrounding quotes):
      quotes, backslashes and control characters become valid JSON
      escapes. *)

  val quote : string -> string
  (** [escape] with surrounding double quotes. *)

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialization (no whitespace).  Integral numbers print
      without a fractional part, so trace fields round-trip exactly;
      [parse (to_string v)] succeeds for every finite value.  Object
      fields keep their list order, so equal values serialize to equal
      bytes — the sinks rely on this for byte-identical traces. *)

  val parse : string -> (t, string) result
  (** A small strict JSON parser, used by the tests, the trace-export
      smoke checks and {!Trace} re-ingestion to validate sink output. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k], if any (the first
      binding when keys are duplicated). *)
end

(** {1 Events} *)

module Event : sig
  (** The process-lifecycle event taxonomy, shared by both schedulers.
      [pid] is the scheduler's node id for the process/branch/fiber the
      event concerns; pids are unique within one run. *)
  type t =
    | Spawn of { pid : int; parent : int; kind : string }
        (** a new process-tree node exists.  [kind] names how it
            was created: ["root"], ["branch"] (pcall/fork child),
            ["process"] (spawned root body), ["future"] (independent
            tree), ["controller"] (a controller body installed by a
            capture), ["graft"] (a node rebuilt by reinstatement —
            every rebuilt node is announced, parents before children).
            [parent] is [-1] for the root of a run. *)
    | Spawn_batch of { pid : int; kind : string; nodes : (int * int) array }
        (** one event for a whole regrafted subtree: [nodes] lists the
            rebuilt nodes as [(pid, parent)] pairs in pre-order (parents
            before children), exactly the order the equivalent individual
            {!Spawn} events would appear in; [pid] is the announcing
            (grafting) node.  Emitted by both schedulers when a
            reinstatement rebuilds a subtree, replacing O(n) ["graft"]
            spawns with one event. *)
    | Exit of { pid : int }  (** the node delivered its final value *)
    | Slice_begin of { pid : int }  (** the scheduler started running the node *)
    | Slice_end of { pid : int; fuel : int }
        (** the slice ended; [fuel] is the machine transitions charged
            (always 1 for the native scheduler, which does not meter
            fiber work) *)
    | Park of { pid : int; resource : string }
        (** the node blocked on the named resource (["future"],
            ["channel.send"], …) and left the run queue *)
    | Wake of { pid : int; resource : string }
        (** a delivery or {!Pcont_sched.Sched.wake} made the parked node
            runnable again *)
    | Capture of {
        pid : int;
        label : int;
        root_pid : int;
        control_points : int;
        size : int;
      }
        (** node [pid] applied the controller rooted at [label];
            [root_pid] is the node whose continuation held the labeled
            root — its live descendants are pruned into the process
            continuation, and the controller body runs in its place.
            The captured subtree has [control_points] control points
            (labels and forks — the quantity the paper's complexity
            claim is stated in) and [size] segments (pstack) or tree
            nodes (native) *)
    | Reinstate of { pid : int; label : int; size : int }
        (** node [pid] invoked a process continuation, grafting the
            captured subtree back into the live tree *)
    | Send of { pid : int; chan : int }  (** a value was enqueued on a channel *)
    | Recv of { pid : int; chan : int }  (** a value was dequeued from a channel *)
    | Cancel of { pid : int; scope : int; reason : string; pids : int array }
        (** node [pid] aborted the subtree rooted at [scope] — a capture
            that declines to reinstate.  [pids] lists every live node
            discarded, pre-order (including [pid] itself when it sat
            inside the scope); parked entries among them were released.
            Futures planted from inside the scope are independent trees
            and are {e not} discarded (the paper's "control operations
            affect only the tree in which they occur"). *)
    | Timeout of { pid : int; deadline : int }
        (** the timer fiber [pid] fired at virtual time [deadline]; the
            {!Cancel} of the timed-out scope follows *)
    | Crash of { pid : int; fault : string }
        (** a fiber failed.  [fault] is ["inject:crash"],
            ["inject:wake:R"] or ["inject:drop:N"] for scheduler fault
            injections — the in-trace markers
            [Pcont_explore.Explore.Schedule.of_trace] re-extracts so a
            faulted run replays byte-identically — or the exception
            description when a scope body raised.  [pid] is [-1] for
            faults targeting a resource rather than a fiber. *)
    | Restart of { pid : int; child : int; attempt : int; backoff : int; limit : int }
        (** supervisor [pid] restarted the child whose failed incarnation
            was rooted at node [child]; [attempt] counts restarts inside
            the current intensity window (1-based, bounded by [limit]),
            [backoff] is the virtual-time delay slept first *)
    | Invalid_controller of { pid : int; label : int }
        (** a controller was applied with no matching root in the
            current continuation *)
    | Deadlock of { parked : int }
        (** the run queue drained with [parked] live parked nodes *)
    | Span_begin of { pid : int; span : int; parent : int; name : string }
        (** fiber [pid] opened causal span [span] — a per-handle id,
            dense in allocation order, so traces stay byte-deterministic
            per seed.  [parent] is the enclosing span id, or [-1] at top
            level.  The current span is part of the fiber's context and
            propagates through [spawn], graft and channel send/recv
            (the receiver adopts the sender's span), so one request's
            latency decomposes across fibers. *)
    | Span_end of { pid : int; span : int }
        (** span [span] closed.  A span whose fiber was cancelled or
            captured away never ends — cleanup is declined
            reinstatement — and the checker's span-balance rule
            tolerates exactly that case. *)

  val name : t -> string
  (** Stable kebab-case tag (["spawn"], ["slice-end"], …), used as the
      ["ev"] field of the JSONL encoding. *)

  val pid : t -> int
  (** The node the event concerns; [-1] for {!Deadlock}. *)

  val to_human : t -> string
  (** One-line human rendering (no newline). *)

  val to_json : seq:int -> ts:int -> t -> Json.t
  (** The JSONL object for one stamped event: [seq], [ts] and [ev]
      first, then the payload fields in a fixed per-constructor order.
      [Sink.jsonl] writes [Json.to_string] of this value;
      [Pcont_obs.Trace.event_of_json] inverts it. *)
end

(** {1 Metrics}

    Counters plus fixed-bucket histograms.  Built on (and usually
    sharing) a {!Pcont_util.Counters.t}, so machine counters and
    scheduler metrics land in one table. *)

module Metrics : sig
  type t

  type hist
  (** A fixed-bucket histogram over non-negative ints with
      power-of-two bucket bounds 1, 2, 4, …, 2{^20} plus an overflow
      bucket. *)

  (** A DDSketch-style mergeable quantile sketch over non-negative
      ints.  Log-spaced buckets with ratio gamma = (1+alpha)/(1-alpha)
      give every quantile estimate a {e proven relative-error bound}:
      bucket [i] holds values in (gamma{^i-1}, gamma{^i}] and reports
      the midpoint 2·gamma{^i}/(gamma+1), so for any observation v in
      the bucket |estimate − v|/v ≤ alpha.  Zeros are counted exactly.
      Storage is O(buckets), independent of the observation count —
      p50/p99/p999 without storing observations. *)
  module Sketch : sig
    type t

    val create : ?alpha:float -> unit -> t
    (** Fresh sketch with relative-error bound [alpha] (default 0.01,
        i.e. quantiles within 1%).  Raises [Invalid_argument] unless
        0 < alpha < 1. *)

    val alpha : t -> float

    val observe : t -> int -> unit
    (** O(1): one log, one array bump (the bucket array grows by
        doubling on first sight of a large value).  Negative values
        clamp to 0. *)

    val quantile : t -> float -> float
    (** [quantile sk q] estimates the [q]-quantile (q clamped to
        [0,1]); 0. when empty.  Deterministic for a given observation
        multiset. *)

    val count : t -> int

    val sum : t -> int

    val max : t -> int
    (** Exact (tracked outside the buckets). *)

    val mean : t -> float
    (** Exact; 0. when empty. *)

    val merge : t -> t -> unit
    (** [merge dst src] folds [src] into [dst] by bucket-wise addition
        — lossless: the result equals the sketch of the concatenated
        streams.  Raises [Invalid_argument] when the error bounds
        differ. *)
  end

  val create : ?counters:Pcont_util.Counters.t -> unit -> t
  (** Fresh metrics; [counters] (default: a fresh table) receives the
      counter half, so callers can share an existing table. *)

  val counters : t -> Pcont_util.Counters.t

  val incr : t -> string -> unit

  val add : t -> string -> int -> unit

  val observe : t -> string -> int -> unit
  (** Record one observation under [name], creating the views on first
      use.  Every observation feeds both the histogram (exact bucket
      counts) and the sketch (quantiles within the error bound), so
      they always agree on count/sum/max.  Values are clamped below
      at 0. *)

  type series
  (** A pre-resolved handle on one named distribution (its histogram and
      sketch).  Scheduler hot paths observe once per slice; resolving
      the name once per run keeps the per-slice cost at two array
      bumps. *)

  val series : t -> string -> series
  (** Resolve [name] to its views, creating them on first use. *)

  val observe_series : series -> int -> unit
  (** [observe] without the per-call name lookup. *)

  val find : t -> string -> hist option

  val hists : t -> (string * hist) list
  (** All histograms, sorted by name. *)

  val find_sketch : t -> string -> Sketch.t option

  val sketches : t -> (string * Sketch.t) list
  (** All sketches, sorted by name. *)

  val quantile : t -> string -> float -> float
  (** [quantile t name q] reads the named sketch; 0. when absent. *)

  val merge : t -> t -> unit
  (** [merge dst src] folds [src] into [dst]: counters add, histograms
      add bucket-wise, sketches merge bucket-wise.  Histograms must
      have the same bounds and sketches the same error bound
      ([Invalid_argument] otherwise).  [src] is left untouched.
      Groundwork for per-domain metrics buffers: domains observe
      locally, a collector merges. *)

  val hist_count : hist -> int

  val hist_sum : hist -> int

  val hist_max : hist -> int

  val hist_mean : hist -> float
  (** 0. when empty. *)

  val hist_buckets : hist -> (string * int) list
  (** Non-empty buckets as [("<=N", count)] pairs, overflow last as
      [(">N", count)]. *)

  val pp : Format.formatter -> t -> unit
  (** Counters, then histograms (empty histograms omitted). *)
end

(** {1 Handles} *)

type t
(** A trace handle: sequence counter, virtual clock, metrics, sinks. *)

type sink = {
  sink_event : seq:int -> ts:int -> Event.t -> unit;
  sink_close : unit -> unit;
}

val create : ?metrics:Metrics.t -> unit -> t
(** A fresh handle with no sinks and a clock at 0. *)

val metrics : t -> Metrics.t

val attach : t -> sink -> unit
(** Add a sink; events fan out to sinks in attach order. *)

val has_sink : t -> bool

val emit : t -> Event.t -> unit
(** Stamp the event with the next sequence number and the current
    virtual time and hand it to every sink.  Call sites in the
    schedulers guard with a match on the [?obs] option, so a run
    without a handle never allocates an event.

    Fan-out is hardened: a sink whose [sink_event] raises cannot
    corrupt the stream.  The exception is captured, every other sink
    still receives the event, the faulty sink is detached, and a
    {!Event.Crash} warning event ([pid = -1],
    [fault = "sink: <exn>"]) is emitted to the survivors.  The
    sequence counter advances exactly once per event either way, so
    seqs stay dense. *)

val advance : t -> int -> unit
(** Advance the virtual clock by [d] (ignored when [d <= 0]).  Only the
    schedulers call this, with deterministic quantities (fuel charged,
    slices run). *)

val now : t -> int

val seq : t -> int
(** Events emitted so far. *)

val observe : t -> string -> int -> unit
(** Shorthand for [Metrics.observe (metrics t)]. *)

val incr : t -> string -> unit
(** Shorthand for [Metrics.incr (metrics t)]. *)

val close : t -> unit
(** Close every sink (flushing any trailer, e.g. the Chrome JSON array's
    closing bracket) and detach them.  Idempotent. *)

(** {1 Causal spans}

    Begin/end annotations over the event stream.  Ids are allocated
    per handle, dense in allocation order, so span numbering — and the
    trace bytes — stay deterministic per seed.  The schedulers carry
    the {e current span} as fiber context (inherited at spawn and
    graft, carried by channel messages); use
    [Pcont_sched.Sched.Span.with_] (native) or the [span-begin] /
    [span-end] primitives (pstack) rather than calling these
    directly. *)

module Span : sig
  val begin_ : t -> pid:int -> ?parent:int -> string -> int
  (** Allocate a span id, emit {!Event.Span_begin} and record the
      begin timestamp; [parent] defaults to [-1] (top level). *)

  val end_ : t -> pid:int -> int -> unit
  (** Emit {!Event.Span_end}; if the span was open, observe its
      duration (virtual time) in the ["span.duration"]
      histogram + sketch. *)

  val open_count : t -> int
  (** Spans begun but not yet ended. *)
end

(** {1:sinks Sinks} *)

module Sink : sig
  val of_channel : out_channel -> string -> unit
  (** A writer appending to the channel. *)

  val human : ?prefix:string -> (string -> unit) -> sink
  (** One line per event: [<prefix>[<ts>] <event>].  [psi --trace] uses
      [~prefix:";; "] to stderr, preserving the historical stream. *)

  val jsonl : (string -> unit) -> sink
  (** One JSON object per line
      ([Json.to_string (Event.to_json ...)]):
      [{"seq":4,"ts":17,"ev":"park","pid":3,"resource":"future"}].
      Field order is fixed, so equal event streams produce byte-equal
      output.  [Pcont_obs.Trace.parse_string] reads this format back. *)

  val chrome : (string -> unit) -> sink
  (** Chrome trace-event JSON (array form), loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Every
      process becomes a named track ([tid] = pid): run slices are
      ["B"]/["E"] duration pairs, everything else an instant event;
      park gaps show as the space between slices.  The sink emits the
      closing bracket on {!close}. *)

  val memory : (int * int * Event.t -> unit) -> sink
  (** Feed [(seq, ts, event)] triples to a callback (tests,
      [psi --analyze]). *)

  (** {2 Flight recorder} *)

  type ring
  (** A fixed-size ring buffer of the last [capacity] stamped events,
      stored {e unboxed} (tag + int fields in int arrays) so recording
      costs a handful of barrier-free array stores — no I/O, no
      allocation, nothing for the GC to promote on the hot path —
      dumped on demand (or automatically on failure) as ordinary JSONL
      that the whole [ptrace] toolchain accepts. *)

  val ring : ?capacity:int -> ?flight:(string -> unit) -> unit -> ring
  (** A fresh ring holding the last [capacity] events (default 4096).
      With [flight] installed, the ring dumps itself to it — one call,
      the whole window as a JSONL string — the moment a
      {!Event.Deadlock} or {!Event.Crash} event passes through (the
      supervisor emits a Crash marker when it gives up, so supervision
      collapse triggers a dump too). *)

  val ring_sink : ring -> sink
  (** The sink recording into [ring]; attach it like any other sink. *)

  val ring_dump : ring -> (string -> unit) -> unit
  (** Write the buffered window, oldest first, as JSONL with the
      {e original} seq/ts stamps — the dump is byte-for-byte a
      contiguous window of the full trace, so an unwrapped dump
      replays byte-identically and a wrapped one still diffs cleanly
      against the replayed full trace. *)

  val ring_stored : ring -> int
  (** Events currently buffered (≤ capacity). *)

  val ring_dropped : ring -> int
  (** Events overwritten since attach (total seen − capacity, ≥ 0). *)

  val ring_dumps : ring -> int
  (** Automatic flight dumps written so far. *)

  (** {2 Sampling} *)

  val sampled : seed:int64 -> rate:float -> sink -> sink
  (** Deterministic per-fiber head sampling in front of [sink]: each
      pid is kept with probability [rate] (clamped to [0,1]), decided
      once per fiber by a splitmix hash of [(seed, pid)] — a stream
      derived from the run seed but independent of the scheduler's own
      PRNG draws, so attaching a sampler never perturbs scheduling and
      the sampled trace is byte-identical for a given seed + rate.
      Structural events (spawn, exit, capture, reinstate, cancel,
      crash, restart, timeout, deadlock, …) always pass; per-fiber
      detail (slices, parks, wakes, sends, recvs, spans) passes only
      for sampled fibers.  Original seq stamps are preserved, so gaps
      are visible to consumers. *)
end

(** {1 Per-process summary} *)

module Summary : sig
  type row = {
    mutable r_kind : string;  (** spawn kind, ["?"] if never spawned *)
    mutable r_slices : int;
    mutable r_fuel : int;
    mutable r_parks : int;
    mutable r_wakes : int;
    mutable r_captures : int;
    mutable r_reinstates : int;
    mutable r_sends : int;
    mutable r_recvs : int;
    mutable r_exits : int;  (** 0 or 1 in a well-formed trace *)
    mutable r_fate : string;
        (** [""] for a normal exit, else ["cancelled"], ["timed-out"]
            (the cancel's reason named a timeout — a
            {!Pcont_resil.Resil.with_timeout}/[with_deadline] deadline
            fired), ["crashed"] or ["restarted"] (restarted > crashed >
            timed-out/cancelled when several apply); rendered in place
            of the exits count by {!pp} *)
  }

  type t

  val create : unit -> t

  val sink : t -> sink
  (** A sink aggregating per-process totals into [t].  Spawn and exit
      events create rows too, so a process that spawns and exits
      without ever slicing still shows up. *)

  val rows : t -> (int * row) list
  (** Totals per pid, sorted by pid. *)

  val deadlock : t -> int option
  (** The parked count of the last deadlock event, if one occurred. *)

  val cancelled_parked : t -> int
  (** Fibers that were parked at the moment a cancel discarded them. *)

  val pp : Format.formatter -> t -> unit
  (** The [psi --summary] table: one row per process, plus a trailing
      deadlock line when one occurred (also counting cancelled-while-
      parked fibers when there were any). *)
end
