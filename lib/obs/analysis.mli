(** Trace analysis: invariant checking, causal reports, diffing.

    The three halves of the [ptrace] CLI.  {!Check} lints a trace
    against the event-stream contract both schedulers promise (a
    post-hoc lost-wakeup/race detector that works on any exported
    trace); {!Report} turns one run into a causal profile — critical
    path, utilization, fairness, blocked-time attribution; {!Diff}
    aligns two traces and reports their first causal divergence. *)

(** {1 Invariant checking} *)

module Check : sig
  type violation = { v_seq : int; v_rule : string; v_msg : string }
  (** [v_seq] is the seq stamp of the offending event ([-1] for
      end-of-trace checks), [v_rule] one of {!rules}. *)

  val rules : (string * string) list
  (** Rule id → one-line description:
      - [seq-dense]: sequence numbers are [base, base+1, …] in file
        order, where [base] is the first event's seq — so a
        flight-recorder dump (a dense suffix of a longer stream) still
        checks clean;
      - [ts-monotone]: timestamps never decrease;
      - [slice-balance]: at most one slice open at a time; every begin
        has a matching end with the same pid; no slice left open at a
        run boundary;
      - [slice-time]: a slice's extent equals [max fuel 1] — the clock
        advances exactly at slice ends;
      - [spawn-unique]: a pid is spawned once per run, its parent is
        known ([-1] only for the root), and every event references a
        spawned pid;
      - [exit-once]: a pid exits at most once, and an exited or pruned
        pid emits nothing afterwards but the end of its open slice;
      - [park-pairing]: parks and wakes alternate per pid with matching
        resources — no double park, no double wake (a wake for a
        never-parked or pruned pid is a lost-wakeup witness), no slice
        while parked;
      - [capture-consistency]: a capture's [root_pid] is a live
        ancestor of the capturing pid, and every reinstate names a
        label captured earlier in the run with the same subtree size;
      - [deadlock-count]: a deadlock event's parked count equals the
        number of live parked processes at that point;
      - [span-balance]: each span id begins at most once, and every
        span end names an id with an open begin (ids are per-handle, so
        this bookkeeping is global across runs; spans left open at end
        of trace are tolerated — cancelled or captured fibers never get
        to close theirs). *)

  val run : Trace.stamped array -> violation list
  (** All violations in stamp order.  The checker resets its per-run
      state (pids, parks, labels) at each root spawn; [seq-dense] and
      [ts-monotone] span the whole trace.

      A trace whose first seq is nonzero is a flight-recorder window
      into the middle of a run.  Every rule still applies to what the
      window can prove, but obligations needing pre-window state are
      relaxed instead of reported as false positives: references to
      pids spawned before the cut, one stray slice end at the top, a
      first wake matching a pre-window park, reinstates of pre-window
      captures, ends of pre-window spans, the deadlock park census,
      and the end-of-run quiescence checks.  The quiescence checks are
      also skipped when the trace ends at a {!Obs.Event.Crash} — the
      cut point of a flight dump triggered by that crash, where the
      interrupted slice is legitimately still open. *)

  val to_json : violation list -> Obs.Json.t

  val pp : Format.formatter -> violation list -> unit
end

(** {1 Causal report} *)

module Report : sig
  type proc = {
    p_pid : int;
    p_kind : string;
    p_slices : int;
    p_fuel : int;
    p_run : int;  (** virtual time on-CPU *)
    p_blocked : int;  (** virtual time parked *)
    p_util : float;  (** [p_run /. span] (0 when the span is empty) *)
  }

  type hop = {
    h_pid : int;
    h_enter : int;  (** slice begin ts *)
    h_leave : int;  (** slice end ts *)
    h_via : string;
        (** how the pid became runnable for this slice: ["start"] (run
            entry), ["spawn:<kind>"], ["wake:<resource>"] or
            ["preempt"] (was runnable all along) *)
  }

  type span_row = {
    sp_name : string;
    sp_count : int;  (** spans begun with this name *)
    sp_open : int;  (** begun but never ended (cancelled/captured) *)
    sp_total : int;  (** Σ closed-span durations, virtual time *)
    sp_mean : float;
    sp_max : int;
    sp_on_path : int;
        (** virtual time a critical-path hop ran while a closed span of
            this name was open — how much of the span was load-bearing *)
  }

  type t = {
    r_events : int;
    r_span : int;
    r_procs : proc list;  (** by pid *)
    r_kinds : (string * int) list;  (** spawn-kind census, by kind *)
    r_fairness : float;
        (** Jain's index [(Σx)² / (n·Σx²)] over the on-CPU time of
            processes that ran at least one slice: 1 = perfectly fair *)
    r_blocked : (string * int) list;  (** blocked time per resource *)
    r_captures : int;
    r_cp_per_capture : float;  (** mean control points per capture *)
    r_size_per_capture : float;
    r_reinstates : int;
    r_critical : hop list;  (** in time order *)
    r_critical_time : int;  (** Σ hop extents; ≤ span, the gap is queueing *)
    r_spans : span_row list;  (** by name; empty when the trace has no spans *)
    r_deadlock : int option;
  }

  val of_run : Trace.run -> t

  val of_trace : Trace.stamped array -> t list
  (** One report per run. *)

  val to_json : t -> Obs.Json.t
  (** Deterministic: equal reports serialize to equal bytes. *)

  val pp : ?top:int -> Format.formatter -> t -> unit
  (** [?top] caps the per-process table at the [top] processes with the
      most on-CPU virtual time (ties by pid), appending a
      "... (k more)" line.  Default: all rows. *)
end

(** {1 Trace diff} *)

module Diff : sig
  type divergence = {
    d_run : int;  (** run index *)
    d_cpid : int;  (** canonical pid (spawn order within the run) *)
    d_index : int;  (** index within that pid's causal stream *)
    d_left : string option;  (** human rendering; [None] = stream ended *)
    d_right : string option;
  }

  val diff : Trace.stamped array -> Trace.stamped array -> divergence option
  (** Compare the causal skeletons of two traces, run by run.  Each
      run's events are projected to scheduler-independent facts — spawn
      structure, exits, capture/reinstate labels, channel operations,
      invalid controllers, deadlock — dropping timestamps, run slices
      and park/wake (pure scheduling), and capture sizes/control points
      (representation-specific).  Pids are renamed to spawn order, and
      each canonical pid's own event sequence (program order) is
      compared, so benign interleaving differences between schedulers
      do not diverge.  [None] means causally aligned. *)

  val to_json : divergence option -> Obs.Json.t

  val pp : Format.formatter -> divergence option -> unit
end

(** {1 Live snapshot} *)

module Snapshot : sig
  (** Incremental fold over a (possibly still growing) event stream —
      the state behind [ptrace top].  Feed stamped events as they
      arrive (e.g. tailing a JSONL file mid-run) and render at any
      point: virtual clock, fiber fates, streaming percentiles for
      slice fuel / wake-to-run latency / span durations (via
      {!Obs.Metrics.Sketch}), and the top blocked resources.  Works
      identically on a finished trace or a flight-recorder dump. *)

  type t

  val create : unit -> t

  val feed : t -> Trace.stamped -> unit

  val runnable : t -> int
  (** Approximate runnable-fiber count:
      [spawned - exited - cancelled - parked] (clamped at 0). *)

  val top_blocked : ?n:int -> t -> (string * int * int) list
  (** [(resource, cumulative blocked vt, currently parked)] for the
      [n] (default 5) resources with the most cumulative blocked time. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 SLO rollup} *)

module Slo : sig
  (** Per-scenario service-level rollup of a load-generator trace — the
      fold behind [ptrace slo].

      Works over the span conventions of [Pcont_load.Load]: a request
      is a span named after its scenario (no ['/'] in the name), the
      handler work is a [<scenario>/service] child span, and a request
      that did not complete carries a zero-length [<scenario>/timedout]
      / [/cancelled] / [/crashed] marker child.  Latency here is
      admission-to-completion as visible in the trace; the exact
      arrival-anchored decomposition lives in [Load.stats] (in-process,
      where the scheduled arrival tick is known). *)

  type scen = {
    sc_name : string;
    mutable sc_requests : int;  (** request spans begun *)
    mutable sc_completed : int;  (** closed without a fate marker *)
    mutable sc_timedout : int;
    mutable sc_cancelled : int;
    mutable sc_crashed : int;
    mutable sc_open : int;  (** never closed (cut or cancelled fiber) *)
    sc_latency : Obs.Metrics.Sketch.t;  (** completed request spans *)
    sc_service : Obs.Metrics.Sketch.t;  (** closed service child spans *)
  }

  type t = {
    slo_events : int;
    slo_span : int;  (** virtual-time extent of the trace *)
    slo_fairness : float;
        (** Jain's index over per-pid on-CPU virtual time *)
    slo_scens : scen list;  (** sorted by name *)
  }

  val of_trace : Trace.stamped array -> t

  val goodput : t -> scen -> float
  (** Completed requests per 1000 virtual ticks of trace extent. *)

  type assertion = { a_scen : string option; a_q : float; a_limit : float }

  val parse_assert : string -> (assertion, string) result
  (** Grammar: [[scenario:]p50|p99|p999<=N] — e.g. ["p99<=250"] or
      ["pool:p999<=4000"].  Without a scenario prefix the bound applies
      to every scenario in the trace. *)

  val quantile_name : float -> string
  (** ["p50"], ["p99"] or ["p999"] — the inverse of {!parse_assert}'s
      quantile field, for rendering assertion failures. *)

  val check : t -> assertion -> (unit, string) result
  (** [Error] describes the first scenario whose completed-request
      latency quantile exceeds the bound (or an assertion that matched
      no scenario — asserting over an empty trace is itself a
      failure). *)

  val to_json : t -> Obs.Json.t
  (** Deterministic: equal rollups serialize to equal bytes. *)

  val pp : Format.formatter -> t -> unit
end
