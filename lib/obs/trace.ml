module Json = Obs.Json
module Event = Obs.Event

type stamped = { seq : int; ts : int; ev : Event.t }

let ( let* ) = Result.bind

let int_field j k =
  match Json.member k j with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S is not an integer" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let str_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let event_of_json j =
  let* seq = int_field j "seq" in
  let* ts = int_field j "ts" in
  let* name = str_field j "ev" in
  let* ev =
    match name with
    | "spawn" ->
        let* pid = int_field j "pid" in
        let* parent = int_field j "parent" in
        let* kind = str_field j "kind" in
        Ok (Event.Spawn { pid; parent; kind })
    | "spawn-batch" ->
        let* pid = int_field j "pid" in
        let* kind = str_field j "kind" in
        let* nodes =
          match Json.member "nodes" j with
          | Some (Json.Arr entries) ->
              let rec go acc = function
                | [] -> Ok (Array.of_list (List.rev acc))
                | Json.Arr [ Json.Num p; Json.Num par ] :: rest
                  when Float.is_integer p && Float.is_integer par ->
                    go ((int_of_float p, int_of_float par) :: acc) rest
                | _ ->
                    Error "field \"nodes\" entries must be [pid,parent] int pairs"
              in
              go [] entries
          | Some _ -> Error "field \"nodes\" is not an array"
          | None -> Error "missing field \"nodes\""
        in
        Ok (Event.Spawn_batch { pid; kind; nodes })
    | "exit" ->
        let* pid = int_field j "pid" in
        Ok (Event.Exit { pid })
    | "slice-begin" ->
        let* pid = int_field j "pid" in
        Ok (Event.Slice_begin { pid })
    | "slice-end" ->
        let* pid = int_field j "pid" in
        let* fuel = int_field j "fuel" in
        Ok (Event.Slice_end { pid; fuel })
    | "park" ->
        let* pid = int_field j "pid" in
        let* resource = str_field j "resource" in
        Ok (Event.Park { pid; resource })
    | "wake" ->
        let* pid = int_field j "pid" in
        let* resource = str_field j "resource" in
        Ok (Event.Wake { pid; resource })
    | "capture" ->
        let* pid = int_field j "pid" in
        let* label = int_field j "label" in
        let* root_pid = int_field j "root_pid" in
        let* control_points = int_field j "control_points" in
        let* size = int_field j "size" in
        Ok (Event.Capture { pid; label; root_pid; control_points; size })
    | "reinstate" ->
        let* pid = int_field j "pid" in
        let* label = int_field j "label" in
        let* size = int_field j "size" in
        Ok (Event.Reinstate { pid; label; size })
    | "send" ->
        let* pid = int_field j "pid" in
        let* chan = int_field j "chan" in
        Ok (Event.Send { pid; chan })
    | "recv" ->
        let* pid = int_field j "pid" in
        let* chan = int_field j "chan" in
        Ok (Event.Recv { pid; chan })
    | "cancel" ->
        let* pid = int_field j "pid" in
        let* scope = int_field j "scope" in
        let* reason = str_field j "reason" in
        let* pids =
          match Json.member "pids" j with
          | Some (Json.Arr entries) ->
              let rec go acc = function
                | [] -> Ok (Array.of_list (List.rev acc))
                | Json.Num p :: rest when Float.is_integer p ->
                    go (int_of_float p :: acc) rest
                | _ -> Error "field \"pids\" entries must be integers"
              in
              go [] entries
          | Some _ -> Error "field \"pids\" is not an array"
          | None -> Error "missing field \"pids\""
        in
        Ok (Event.Cancel { pid; scope; reason; pids })
    | "timeout" ->
        let* pid = int_field j "pid" in
        let* deadline = int_field j "deadline" in
        Ok (Event.Timeout { pid; deadline })
    | "crash" ->
        let* pid = int_field j "pid" in
        let* fault = str_field j "fault" in
        Ok (Event.Crash { pid; fault })
    | "restart" ->
        let* pid = int_field j "pid" in
        let* child = int_field j "child" in
        let* attempt = int_field j "attempt" in
        let* backoff = int_field j "backoff" in
        let* limit = int_field j "limit" in
        Ok (Event.Restart { pid; child; attempt; backoff; limit })
    | "invalid-controller" ->
        let* pid = int_field j "pid" in
        let* label = int_field j "label" in
        Ok (Event.Invalid_controller { pid; label })
    | "deadlock" ->
        let* parked = int_field j "parked" in
        Ok (Event.Deadlock { parked })
    | "span-begin" ->
        let* pid = int_field j "pid" in
        let* span = int_field j "span" in
        let* parent = int_field j "parent" in
        let* name = str_field j "name" in
        Ok (Event.Span_begin { pid; span; parent; name })
    | "span-end" ->
        let* pid = int_field j "pid" in
        let* span = int_field j "span" in
        Ok (Event.Span_end { pid; span })
    | other -> Error (Printf.sprintf "unknown event tag %S" other)
  in
  Ok { seq; ts; ev }

let to_json s = Event.to_json ~seq:s.seq ~ts:s.ts s.ev

let parse_string body =
  let lines = String.split_on_char '\n' body in
  let acc = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        match Json.parse line with
        | Error m -> err := Some (Printf.sprintf "line %d: %s" (i + 1) m)
        | Ok j -> (
            match event_of_json j with
            | Error m -> err := Some (Printf.sprintf "line %d: %s" (i + 1) m)
            | Ok s -> acc := s :: !acc))
    lines;
  match !err with
  | Some m -> Error m
  | None -> Ok (Array.of_list (List.rev !acc))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | body -> parse_string body
  | exception Sys_error m -> Error m

(* ---------------- runs ---------------- *)

let is_root s = match s.ev with Event.Spawn { parent = -1; _ } -> true | _ -> false

let runs events =
  let cuts = ref [] in
  Array.iteri (fun i s -> if is_root s && i > 0 then cuts := i :: !cuts) events;
  let cuts = List.rev !cuts in
  let bounds =
    let rec go start = function
      | [] -> [ (start, Array.length events) ]
      | c :: rest -> (start, c) :: go c rest
    in
    go 0 cuts
  in
  bounds
  |> List.filter (fun (a, b) -> b > a)
  |> List.map (fun (a, b) -> Array.sub events a (b - a))
  |> Array.of_list

(* ---------------- reconstruction ---------------- *)

type node = {
  n_pid : int;
  n_parent : int;
  n_kind : string;
  n_spawn_ts : int;
  mutable n_children : int list;
  mutable n_exit_ts : int option;
  mutable n_pruned_ts : int option;
  mutable n_slices : int;
  mutable n_run : int;
  mutable n_fuel : int;
  mutable n_parks : int;
  mutable n_wakes : int;
  mutable n_captures : int;
  mutable n_reinstates : int;
  mutable n_sends : int;
  mutable n_recvs : int;
  mutable n_blocked : (string * int) list;
}

type slice = {
  sl_pid : int;
  sl_begin : int;
  sl_end : int;
  sl_begin_ts : int;
  sl_end_ts : int;
}

type run = {
  r_events : stamped array;
  r_nodes : node array;
  r_slices : slice array;
  r_actor : int array;
  r_first_ts : int;
  r_span : int;
  r_deadlock : int option;
}

let node_of run pid =
  (* r_nodes is sorted by pid *)
  let lo = ref 0 and hi = ref (Array.length run.r_nodes) in
  let found = ref None in
  while !found = None && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let n = run.r_nodes.(mid) in
    if n.n_pid = pid then found := Some n
    else if n.n_pid < pid then lo := mid + 1
    else hi := mid
  done;
  !found

let add_blocked n resource d =
  let rec go = function
    | [] -> [ (resource, d) ]
    | (r, t) :: rest when r = resource -> (r, t + d) :: rest
    | kv :: rest -> kv :: go rest
  in
  n.n_blocked <- go n.n_blocked

let reconstruct events =
  let tbl : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let parked : (int, string * int) Hashtbl.t = Hashtbl.create 16 in
  let find pid = Hashtbl.find_opt tbl pid in
  let n_events = Array.length events in
  let actor = Array.make n_events (-1) in
  let slices = ref [] in
  let n_slices = ref 0 in
  let open_slice = ref None in
  let deadlock = ref None in
  let first_ts = if n_events = 0 then 0 else events.(0).ts in
  let last_ts = if n_events = 0 then 0 else events.(n_events - 1).ts in
  let unpark ~ts pid =
    match Hashtbl.find_opt parked pid with
    | None -> None
    | Some (resource, since) ->
        Hashtbl.remove parked pid;
        (match find pid with
        | Some n -> add_blocked n resource (ts - since)
        | None -> ());
        Some resource
  in
  let rec prune ~ts pid =
    match find pid with
    | None -> ()
    | Some n ->
        List.iter
          (fun c ->
            match find c with
            (* futures are independent trees: a capture (or cancel) of
               the planting subtree never discards them *)
            | Some m
              when m.n_exit_ts = None && m.n_pruned_ts = None
                   && m.n_kind <> "future" ->
                ignore (unpark ~ts c);
                m.n_pruned_ts <- Some ts;
                prune ~ts c
            | _ -> ())
          n.n_children
  in
  let add_node ~ts pid parent kind =
    if not (Hashtbl.mem tbl pid) then begin
      let n =
        {
          n_pid = pid;
          n_parent = parent;
          n_kind = kind;
          n_spawn_ts = ts;
          n_children = [];
          n_exit_ts = None;
          n_pruned_ts = None;
          n_slices = 0;
          n_run = 0;
          n_fuel = 0;
          n_parks = 0;
          n_wakes = 0;
          n_captures = 0;
          n_reinstates = 0;
          n_sends = 0;
          n_recvs = 0;
          n_blocked = [];
        }
      in
      Hashtbl.add tbl pid n;
      match find parent with
      | Some p -> p.n_children <- p.n_children @ [ pid ]
      | None -> ()
    end
  in
  Array.iteri
    (fun i s ->
      (match !open_slice with
      | Some (_, _, _, idx) -> actor.(i) <- idx
      | None -> ());
      match s.ev with
      | Event.Spawn { pid; parent; kind } -> add_node ~ts:s.ts pid parent kind
      | Event.Spawn_batch { kind; nodes; _ } ->
          (* pre-order, so each parent is registered before its children *)
          Array.iter (fun (pid, parent) -> add_node ~ts:s.ts pid parent kind) nodes
      | Event.Exit { pid } -> (
          match find pid with
          | Some n -> if n.n_exit_ts = None then n.n_exit_ts <- Some s.ts
          | None -> ())
      | Event.Slice_begin { pid } ->
          (* Tolerate an unterminated previous slice by force-closing it
             with zero extent. *)
          (match !open_slice with
          | Some (opid, ob, obts, _) ->
              incr n_slices;
              slices :=
                { sl_pid = opid; sl_begin = ob; sl_end = i; sl_begin_ts = obts;
                  sl_end_ts = obts }
                :: !slices
          | None -> ());
          actor.(i) <- !n_slices;
          open_slice := Some (pid, i, s.ts, !n_slices)
      | Event.Slice_end { pid; fuel } -> (
          match !open_slice with
          | Some (opid, ob, obts, idx) when opid = pid ->
              actor.(i) <- idx;
              open_slice := None;
              incr n_slices;
              slices :=
                { sl_pid = pid; sl_begin = ob; sl_end = i; sl_begin_ts = obts;
                  sl_end_ts = s.ts }
                :: !slices;
              (match find pid with
              | Some n ->
                  n.n_slices <- n.n_slices + 1;
                  n.n_run <- n.n_run + (s.ts - obts);
                  n.n_fuel <- n.n_fuel + fuel
              | None -> ())
          | _ -> ())
      | Event.Park { pid; resource } -> (
          match find pid with
          | Some n ->
              n.n_parks <- n.n_parks + 1;
              if not (Hashtbl.mem parked pid) then
                Hashtbl.add parked pid (resource, s.ts)
          | None -> ())
      | Event.Wake { pid; _ } -> (
          match find pid with
          | Some n ->
              n.n_wakes <- n.n_wakes + 1;
              ignore (unpark ~ts:s.ts pid)
          | None -> ())
      | Event.Capture { pid; root_pid; _ } ->
          (match find pid with
          | Some n -> n.n_captures <- n.n_captures + 1
          | None -> ());
          prune ~ts:s.ts root_pid
      | Event.Reinstate { pid; _ } -> (
          match find pid with
          | Some n -> n.n_reinstates <- n.n_reinstates + 1
          | None -> ())
      | Event.Send { pid; _ } -> (
          match find pid with
          | Some n -> n.n_sends <- n.n_sends + 1
          | None -> ())
      | Event.Recv { pid; _ } -> (
          match find pid with
          | Some n -> n.n_recvs <- n.n_recvs + 1
          | None -> ())
      | Event.Cancel { pids; _ } ->
          (* the scheduler lists exactly the nodes it discarded (futures
             planted inside the scope are absent: they live on) *)
          Array.iter
            (fun c ->
              match find c with
              | Some m when m.n_exit_ts = None && m.n_pruned_ts = None ->
                  ignore (unpark ~ts:s.ts c);
                  m.n_pruned_ts <- Some s.ts
              | _ -> ())
            pids
      | Event.Timeout _ | Event.Crash _ | Event.Restart _ -> ()
      | Event.Span_begin _ | Event.Span_end _ -> ()
      | Event.Invalid_controller _ -> ()
      | Event.Deadlock { parked = p } -> deadlock := Some p)
    events;
  (* A slice left open at the end of the stream (truncated trace) still
     owns its events; close it at the last timestamp. *)
  (match !open_slice with
  | Some (opid, ob, obts, _) ->
      incr n_slices;
      slices :=
        { sl_pid = opid; sl_begin = ob; sl_end = n_events - 1; sl_begin_ts = obts;
          sl_end_ts = last_ts }
        :: !slices
  | None -> ());
  (* Close out parks that never woke: they were blocked to the end. *)
  Hashtbl.iter
    (fun pid (resource, since) ->
      match find pid with
      | Some n -> add_blocked n resource (last_ts - since)
      | None -> ())
    parked;
  let nodes =
    Hashtbl.fold (fun _ n acc -> n :: acc) tbl []
    |> List.sort (fun a b -> compare a.n_pid b.n_pid)
    |> Array.of_list
  in
  let slices =
    !slices |> List.rev |> Array.of_list
  in
  (* Force-closed zero-extent slices were appended out of begin order at
     most one position away; restore begin order. *)
  Array.sort (fun a b -> compare a.sl_begin b.sl_begin) slices;
  {
    r_events = events;
    r_nodes = nodes;
    r_slices = slices;
    r_actor = actor;
    r_first_ts = first_ts;
    r_span = last_ts - first_ts;
    r_deadlock = !deadlock;
  }

let blocked_total run =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      List.iter
        (fun (r, d) ->
          let cur = match Hashtbl.find_opt tbl r with Some c -> c | None -> 0 in
          Hashtbl.replace tbl r (cur + d))
        n.n_blocked)
    run.r_nodes;
  Hashtbl.fold (fun r d acc -> (r, d) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let schedule run = Array.map (fun s -> s.sl_pid) run.r_slices
