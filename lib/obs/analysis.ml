module Json = Obs.Json
module Event = Obs.Event

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                  *)
(* ------------------------------------------------------------------ *)

module Check = struct
  type violation = { v_seq : int; v_rule : string; v_msg : string }

  let rules =
    [
      ("seq-dense", "sequence numbers are 0,1,2,... in file order");
      ("ts-monotone", "timestamps never decrease");
      ("slice-balance", "slice begin/end pairs balance, one open at a time");
      ("slice-time", "a slice's extent equals max(fuel,1)");
      ("spawn-unique", "each pid is spawned once and referenced only after");
      ("exit-once", "a pid exits once and emits nothing after death");
      ("park-pairing", "parks and wakes alternate with matching resources");
      ("capture-consistency", "captures prune live ancestors; reinstates match");
      ("deadlock-count", "deadlock parked count matches live parked processes");
      ( "cancel-propagation-complete",
        "a cancel discards every live non-future descendant of its scope" );
      ( "restart-intensity-bounded",
        "restart attempts stay within the declared intensity limit" );
      ( "no-orphan-waiters",
        "no fiber ends the run parked under a cancelled or pruned ancestor" );
    ]

  type status = Live | Exited | Pruned | Cancelled

  type pstate = {
    ps_parent : int;
    ps_kind : string;
    mutable ps_children : int list;
    mutable ps_status : status;
    mutable ps_parked : string option;
  }

  let run (events : Trace.stamped array) =
    let out = ref [] in
    let violate seq rule msg = out := { v_seq = seq; v_rule = rule; v_msg = msg } :: !out in
    let prev_ts = ref min_int in
    (* per-run state, reset at each root spawn *)
    let nodes : (int, pstate) Hashtbl.t = Hashtbl.create 64 in
    let labels : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    let open_slice = ref None in
    let n_parked = ref 0 in
    let reset_run seq =
      (match !open_slice with
      | Some (pid, _) ->
          violate seq "slice-balance"
            (Printf.sprintf "slice of pid %d still open at run boundary" pid)
      | None -> ());
      open_slice := None;
      Hashtbl.reset nodes;
      Hashtbl.reset labels;
      n_parked := 0
    in
    let find pid = Hashtbl.find_opt nodes pid in
    let rec is_ancestor anc pid =
      (* strict: anc is a proper ancestor of pid *)
      match find pid with
      | None -> false
      | Some ps -> ps.ps_parent = anc || (ps.ps_parent >= 0 && is_ancestor anc ps.ps_parent)
    in
    let rec prune_descendants pid =
      match find pid with
      | None -> ()
      | Some ps ->
          List.iter
            (fun c ->
              match find c with
              (* futures are independent trees: control operations in the
                 planting tree never discard them *)
              | Some cs when cs.ps_status = Live && cs.ps_kind <> "future" ->
                  (match cs.ps_parked with
                  | Some _ ->
                      cs.ps_parked <- None;
                      decr n_parked
                  | None -> ());
                  cs.ps_status <- Pruned;
                  prune_descendants c
              | _ -> ())
            ps.ps_children
    in
    (* A fiber still parked while some ancestor was cancelled or
       capture-pruned can never be woken by its (discarded) tree: it is
       leaked.  Checked at every quiescence point — deadlock, run
       boundary, end of trace. *)
    let scan_orphans seq =
      let dead_above pid =
        let rec go p =
          match find p with
          | None -> None
          | Some ps -> (
              match ps.ps_status with
              | Cancelled | Pruned -> Some p
              | Live | Exited -> if ps.ps_parent >= 0 then go ps.ps_parent else None)
        in
        match find pid with
        | Some ps when ps.ps_parent >= 0 -> go ps.ps_parent
        | _ -> None
      in
      Hashtbl.fold (fun pid ps acc -> (pid, ps) :: acc) nodes []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (pid, ps) ->
             match (ps.ps_status, ps.ps_parked) with
             | Live, Some r -> (
                 match dead_above pid with
                 | Some anc ->
                     violate seq "no-orphan-waiters"
                       (Printf.sprintf
                          "pid %d still parked on %s under dead ancestor %d" pid r
                          anc)
                 | None -> ())
             | _ -> ())
    in
    (* A dead (exited or pruned) pid may still close the slice it had
       open when it died; anything else is a violation. *)
    let check_alive seq pid what =
      match find pid with
      | None ->
          violate seq "spawn-unique"
            (Printf.sprintf "%s references pid %d, never spawned in this run" what pid);
          false
      | Some ps -> (
          match ps.ps_status with
          | Live -> true
          | Exited ->
              violate seq "exit-once" (Printf.sprintf "%s by exited pid %d" what pid);
              false
          | Pruned ->
              violate seq "exit-once" (Printf.sprintf "%s by pruned pid %d" what pid);
              false
          | Cancelled ->
              violate seq "exit-once"
                (Printf.sprintf "%s by cancelled pid %d" what pid);
              false)
    in
    let check_not_parked seq pid what =
      match find pid with
      | Some { ps_parked = Some r; _ } ->
          violate seq "park-pairing"
            (Printf.sprintf "%s by pid %d while parked on %s" what pid r)
      | _ -> ()
    in
    Array.iteri
      (fun i s ->
        let seq = s.Trace.seq in
        if seq <> i then
          violate seq "seq-dense"
            (Printf.sprintf "event %d carries seq %d" i seq);
        if s.Trace.ts < !prev_ts then
          violate seq "ts-monotone"
            (Printf.sprintf "ts %d after ts %d" s.Trace.ts !prev_ts);
        prev_ts := max !prev_ts s.Trace.ts;
        (* One spawned node, whether announced individually or inside a
           batch: the same spawn-unique obligations apply to each. *)
        let spawn_node seq pid parent kind =
          match find pid with
          | Some _ ->
              violate seq "spawn-unique"
                (Printf.sprintf "pid %d spawned twice in one run" pid)
          | None ->
              if parent <> -1 then (
                match find parent with
                | None ->
                    violate seq "spawn-unique"
                      (Printf.sprintf "pid %d spawned by unknown parent %d" pid parent)
                | Some ps ->
                    (match ps.ps_status with
                    | Live -> ()
                    | Exited | Pruned | Cancelled ->
                        violate seq "spawn-unique"
                          (Printf.sprintf "pid %d spawned by dead parent %d (%s)" pid
                             parent kind));
                    ps.ps_children <- ps.ps_children @ [ pid ]);
              Hashtbl.add nodes pid
                { ps_parent = parent; ps_kind = kind; ps_children = [];
                  ps_status = Live; ps_parked = None }
        in
        match s.Trace.ev with
        | Event.Spawn { pid; parent; kind } ->
            if parent = -1 then begin
              (* the previous run is over: anything still parked under a
                 cancelled/pruned ancestor stayed parked forever *)
              scan_orphans seq;
              reset_run seq
            end;
            spawn_node seq pid parent kind
        | Event.Spawn_batch { kind; nodes = batch; _ } ->
            (* pre-order: parents must already be known (or earlier in the
               batch), so the per-node checks run in listed order *)
            Array.iter (fun (pid, parent) -> spawn_node seq pid parent kind) batch
        | Event.Exit { pid } ->
            if check_alive seq pid "exit" then begin
              check_not_parked seq pid "exit";
              (Option.get (find pid)).ps_status <- Exited
            end
        | Event.Slice_begin { pid } ->
            (match !open_slice with
            | Some (opid, _) ->
                violate seq "slice-balance"
                  (Printf.sprintf "slice begin for pid %d while pid %d's slice is open"
                     pid opid)
            | None -> ());
            if check_alive seq pid "slice begin" then
              check_not_parked seq pid "slice begin";
            open_slice := Some (pid, s.Trace.ts)
        | Event.Slice_end { pid; fuel } -> (
            match !open_slice with
            | None ->
                violate seq "slice-balance"
                  (Printf.sprintf "slice end for pid %d with no slice open" pid)
            | Some (opid, ots) ->
                if opid <> pid then
                  violate seq "slice-balance"
                    (Printf.sprintf "slice end for pid %d closes pid %d's slice" pid opid)
                else begin
                  let extent = s.Trace.ts - ots in
                  let want = max fuel 1 in
                  if extent <> want then
                    violate seq "slice-time"
                      (Printf.sprintf
                         "slice of pid %d spans %d virtual time for fuel %d (want %d)"
                         pid extent fuel want)
                end;
                open_slice := None)
        | Event.Park { pid; resource } ->
            if check_alive seq pid "park" then begin
              let ps = Option.get (find pid) in
              match ps.ps_parked with
              | Some r ->
                  violate seq "park-pairing"
                    (Printf.sprintf "pid %d parked on %s while already parked on %s" pid
                       resource r)
              | None ->
                  ps.ps_parked <- Some resource;
                  incr n_parked
            end
        | Event.Wake { pid; resource } ->
            if check_alive seq pid "wake" then begin
              let ps = Option.get (find pid) in
              match ps.ps_parked with
              | None ->
                  violate seq "park-pairing"
                    (Printf.sprintf "wake for pid %d, which is not parked (double wake?)"
                       pid)
              | Some r ->
                  if r <> resource then
                    violate seq "park-pairing"
                      (Printf.sprintf "pid %d parked on %s but woken on %s" pid r resource);
                  ps.ps_parked <- None;
                  decr n_parked
            end
        | Event.Capture { pid; label; root_pid; size; _ } ->
            if check_alive seq pid "capture" then begin
              check_not_parked seq pid "capture";
              (match find root_pid with
              | None ->
                  violate seq "capture-consistency"
                    (Printf.sprintf "capture at unknown root pid %d" root_pid)
              | Some rs ->
                  if rs.ps_status <> Live then
                    violate seq "capture-consistency"
                      (Printf.sprintf "capture at dead root pid %d" root_pid)
                  else if not (is_ancestor root_pid pid) then
                    violate seq "capture-consistency"
                      (Printf.sprintf "capture root pid %d is not an ancestor of pid %d"
                         root_pid pid));
              prune_descendants root_pid;
              let sizes =
                match Hashtbl.find_opt labels label with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add labels label r;
                    r
              in
              sizes := size :: !sizes
            end
        | Event.Reinstate { pid; label; size } ->
            if check_alive seq pid "reinstate" then begin
              check_not_parked seq pid "reinstate";
              match Hashtbl.find_opt labels label with
              | None ->
                  violate seq "capture-consistency"
                    (Printf.sprintf "reinstate of label %d, never captured in this run"
                       label)
              | Some sizes ->
                  if not (List.mem size !sizes) then
                    violate seq "capture-consistency"
                      (Printf.sprintf
                         "reinstate of label %d with size %d, no matching capture" label
                         size)
            end
        | Event.Send { pid; _ } ->
            if check_alive seq pid "send" then check_not_parked seq pid "send"
        | Event.Recv { pid; _ } ->
            if check_alive seq pid "recv" then check_not_parked seq pid "recv"
        | Event.Cancel { pid; scope; reason = _; pids } ->
            ignore (check_alive seq pid "cancel");
            (match find scope with
            | None ->
                violate seq "cancel-propagation-complete"
                  (Printf.sprintf "cancel of unknown scope pid %d" scope)
            | Some ss ->
                if ss.ps_status <> Live then
                  violate seq "cancel-propagation-complete"
                    (Printf.sprintf "cancel of dead scope pid %d" scope));
            Array.iter
              (fun q ->
                if q <> scope && not (is_ancestor scope q) then
                  violate seq "cancel-propagation-complete"
                    (Printf.sprintf
                       "cancel of scope %d lists pid %d, not a descendant" scope q);
                match find q with
                | Some qs when qs.ps_status = Live ->
                    (match qs.ps_parked with
                    | Some _ ->
                        qs.ps_parked <- None;
                        decr n_parked
                    | None -> ());
                    qs.ps_status <- Cancelled
                | Some _ ->
                    violate seq "cancel-propagation-complete"
                      (Printf.sprintf "cancel of scope %d lists dead pid %d" scope q)
                | None ->
                    violate seq "cancel-propagation-complete"
                      (Printf.sprintf "cancel of scope %d lists unknown pid %d" scope
                         q))
              pids;
            (* completeness: the whole scope subtree must now be dead,
               futures (independent trees) excepted *)
            let rec check_empty p =
              match find p with
              | None -> ()
              | Some ps ->
                  List.iter
                    (fun c ->
                      match find c with
                      | Some cs when cs.ps_kind <> "future" ->
                          if cs.ps_status = Live then
                            violate seq "cancel-propagation-complete"
                              (Printf.sprintf
                                 "pid %d still live after cancel of scope %d" c scope);
                          check_empty c
                      | _ -> ())
                    ps.ps_children
            in
            check_empty scope
        | Event.Timeout { pid; _ } -> ignore (check_alive seq pid "timeout")
        | Event.Crash { pid; _ } ->
            if pid >= 0 then ignore (check_alive seq pid "crash")
        | Event.Restart { pid; child; attempt; backoff = _; limit } ->
            ignore (check_alive seq pid "restart");
            if find child = None then
              violate seq "restart-intensity-bounded"
                (Printf.sprintf "restart references unknown child pid %d" child);
            if attempt < 1 || attempt > limit then
              violate seq "restart-intensity-bounded"
                (Printf.sprintf "restart attempt %d outside window limit %d" attempt
                   limit)
        | Event.Invalid_controller { pid; _ } -> ignore (check_alive seq pid "controller")
        | Event.Deadlock { parked } ->
            if parked <> !n_parked then
              violate seq "deadlock-count"
                (Printf.sprintf "deadlock reports %d parked, trace shows %d" parked
                   !n_parked))
      events;
    (match !open_slice with
    | Some (pid, _) ->
        violate (-1) "slice-balance"
          (Printf.sprintf "slice of pid %d still open at end of trace" pid)
    | None -> ());
    scan_orphans (-1);
    List.rev !out

  let to_json vs =
    Json.Arr
      (List.map
         (fun v ->
           Json.Obj
             [
               ("seq", Json.Num (float_of_int v.v_seq));
               ("rule", Json.Str v.v_rule);
               ("msg", Json.Str v.v_msg);
             ])
         vs)

  let pp ppf vs =
    match vs with
    | [] -> Format.fprintf ppf "ok: no invariant violations@."
    | vs ->
        List.iter
          (fun v ->
            Format.fprintf ppf "violation [%s] seq=%d: %s@." v.v_rule v.v_seq v.v_msg)
          vs;
        Format.fprintf ppf "%d violation(s)@." (List.length vs)
end

(* ------------------------------------------------------------------ *)
(* Causal report                                                       *)
(* ------------------------------------------------------------------ *)

module Report = struct
  type proc = {
    p_pid : int;
    p_kind : string;
    p_slices : int;
    p_fuel : int;
    p_run : int;
    p_blocked : int;
    p_util : float;
  }

  type hop = { h_pid : int; h_enter : int; h_leave : int; h_via : string }

  type t = {
    r_events : int;
    r_span : int;
    r_procs : proc list;
    r_kinds : (string * int) list;
    r_fairness : float;
    r_blocked : (string * int) list;
    r_captures : int;
    r_cp_per_capture : float;
    r_size_per_capture : float;
    r_reinstates : int;
    r_critical : hop list;
    r_critical_time : int;
    r_deadlock : int option;
  }

  (* How a pid became runnable: the latest of its spawn, its wakes, its
     children's exits (a fork parent resumes when its last child
     delivers), the captures rooted at it (the controller body runs in
     the root's place) and its own previous slice ends (preemption)
     decides which earlier slice the critical path jumps to. *)
  type enabler =
    | En_spawn of string
    | En_wake of string
    | En_join
    | En_capture
    | En_end

  let critical_path (run : Trace.run) =
    let events = run.Trace.r_events in
    let slices = run.Trace.r_slices in
    let nslices = Array.length slices in
    if nslices = 0 then []
    else begin
      (* Per-pid enabling events, in index order. *)
      let enablers : (int, (int * enabler) list ref) Hashtbl.t = Hashtbl.create 64 in
      let parents : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let push pid i e =
        match Hashtbl.find_opt enablers pid with
        | Some r -> r := (i, e) :: !r
        | None -> Hashtbl.add enablers pid (ref [ (i, e) ])
      in
      Array.iteri
        (fun i s ->
          match s.Trace.ev with
          | Event.Spawn { pid; parent; kind } ->
              Hashtbl.replace parents pid parent;
              push pid i (En_spawn kind)
          | Event.Spawn_batch { kind; nodes; _ } ->
              Array.iter
                (fun (pid, parent) ->
                  Hashtbl.replace parents pid parent;
                  push pid i (En_spawn kind))
                nodes
          | Event.Wake { pid; resource } -> push pid i (En_wake resource)
          | Event.Exit { pid } -> (
              match Hashtbl.find_opt parents pid with
              | Some p when p >= 0 -> push p i En_join
              | _ -> ())
          | Event.Capture { root_pid; _ } -> push root_pid i En_capture
          | Event.Slice_end { pid; _ } -> push pid i En_end
          | _ -> ())
        events;
      let enablers =
        let t = Hashtbl.create (Hashtbl.length enablers) in
        Hashtbl.iter (fun pid r -> Hashtbl.add t pid (Array.of_list (List.rev !r))) enablers;
        t
      in
      (* Greatest enabling event of [pid] strictly before index [i]. *)
      let latest_before pid i =
        match Hashtbl.find_opt enablers pid with
        | None -> None
        | Some arr ->
            let lo = ref 0 and hi = ref (Array.length arr) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if fst arr.(mid) < i then lo := mid + 1 else hi := mid
            done;
            if !lo = 0 then None else Some arr.(!lo - 1)
      in
      let hops = ref [] in
      let rec walk sidx =
        let sl = slices.(sidx) in
        let enter = sl.Trace.sl_begin_ts and leave = sl.Trace.sl_end_ts in
        let continue via = hops := (sl.Trace.sl_pid, enter, leave, via) :: !hops in
        let hop via i =
          continue via;
          let prev = run.Trace.r_actor.(i) in
          if prev >= 0 && prev < sidx then walk prev
        in
        match latest_before sl.Trace.sl_pid sl.Trace.sl_begin with
        | None -> continue "start"
        | Some (i, En_end) -> hop "preempt" i
        | Some (i, En_spawn kind) -> hop ("spawn:" ^ kind) i
        | Some (i, En_wake resource) -> hop ("wake:" ^ resource) i
        | Some (i, En_join) -> hop "join" i
        | Some (i, En_capture) -> hop "capture" i
      in
      walk (nslices - 1);
      List.map
        (fun (h_pid, h_enter, h_leave, h_via) -> { h_pid; h_enter; h_leave; h_via })
        !hops
    end

  let jain xs =
    match xs with
    | [] -> 1.
    | xs ->
        let n = float_of_int (List.length xs) in
        let sum = List.fold_left (fun a x -> a +. x) 0. xs in
        let sq = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
        if sq = 0. then 1. else sum *. sum /. (n *. sq)

  let of_run (run : Trace.run) =
    let span = run.Trace.r_span in
    let procs =
      Array.to_list run.Trace.r_nodes
      |> List.map (fun n ->
             let blocked =
               List.fold_left (fun a (_, d) -> a + d) 0 n.Trace.n_blocked
             in
             {
               p_pid = n.Trace.n_pid;
               p_kind = n.Trace.n_kind;
               p_slices = n.Trace.n_slices;
               p_fuel = n.Trace.n_fuel;
               p_run = n.Trace.n_run;
               p_blocked = blocked;
               p_util =
                 (if span = 0 then 0.
                  else float_of_int n.Trace.n_run /. float_of_int span);
             })
    in
    let kinds =
      let tbl = Hashtbl.create 8 in
      Array.iter
        (fun n ->
          let k = n.Trace.n_kind in
          Hashtbl.replace tbl k
            (1 + match Hashtbl.find_opt tbl k with Some c -> c | None -> 0))
        run.Trace.r_nodes;
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let captures = ref 0 and cps = ref 0 and sizes = ref 0 and reinstates = ref 0 in
    Array.iter
      (fun s ->
        match s.Trace.ev with
        | Event.Capture { control_points; size; _ } ->
            incr captures;
            cps := !cps + control_points;
            sizes := !sizes + size
        | Event.Reinstate _ -> incr reinstates
        | _ -> ())
      run.Trace.r_events;
    let mean total n = if n = 0 then 0. else float_of_int total /. float_of_int n in
    let critical = critical_path run in
    {
      r_events = Array.length run.Trace.r_events;
      r_span = span;
      r_procs = procs;
      r_kinds = kinds;
      r_fairness =
        jain
          (List.filter_map
             (fun p -> if p.p_slices > 0 then Some (float_of_int p.p_run) else None)
             procs);
      r_blocked = Trace.blocked_total run;
      r_captures = !captures;
      r_cp_per_capture = mean !cps !captures;
      r_size_per_capture = mean !sizes !captures;
      r_reinstates = !reinstates;
      r_critical = critical;
      r_critical_time =
        List.fold_left (fun a h -> a + (h.h_leave - h.h_enter)) 0 critical;
      r_deadlock = run.Trace.r_deadlock;
    }

  let of_trace events = Trace.runs events |> Array.to_list |> List.map Trace.reconstruct
                        |> List.map of_run

  let to_json r =
    let num n = Json.Num (float_of_int n) in
    Json.Obj
      [
        ("events", num r.r_events);
        ("span", num r.r_span);
        ("processes", num (List.length r.r_procs));
        ("kinds", Json.Obj (List.map (fun (k, c) -> (k, num c)) r.r_kinds));
        ("fairness", Json.Num r.r_fairness);
        ( "utilization",
          Json.Arr
            (List.map
               (fun p ->
                 Json.Obj
                   [
                     ("pid", num p.p_pid);
                     ("kind", Json.Str p.p_kind);
                     ("slices", num p.p_slices);
                     ("fuel", num p.p_fuel);
                     ("run", num p.p_run);
                     ("blocked", num p.p_blocked);
                     ("util", Json.Num p.p_util);
                   ])
               r.r_procs) );
        ("blocked", Json.Obj (List.map (fun (k, d) -> (k, num d)) r.r_blocked));
        ( "captures",
          Json.Obj
            [
              ("count", num r.r_captures);
              ("control_points_mean", Json.Num r.r_cp_per_capture);
              ("size_mean", Json.Num r.r_size_per_capture);
              ("reinstates", num r.r_reinstates);
            ] );
        ( "critical_path",
          Json.Obj
            [
              ("time", num r.r_critical_time);
              ("hops", num (List.length r.r_critical));
              ( "path",
                Json.Arr
                  (List.map
                     (fun h ->
                       Json.Obj
                         [
                           ("pid", num h.h_pid);
                           ("enter", num h.h_enter);
                           ("leave", num h.h_leave);
                           ("via", Json.Str h.h_via);
                         ])
                     r.r_critical) );
            ] );
        ( "deadlock",
          match r.r_deadlock with None -> Json.Null | Some p -> num p );
      ]

  let pp ppf r =
    let pct part whole =
      if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
    in
    Format.fprintf ppf "@[<v>run: %d events, span %d, %d processes (" r.r_events
      r.r_span (List.length r.r_procs);
    List.iteri
      (fun i (k, c) -> Format.fprintf ppf "%s%s %d" (if i > 0 then ", " else "") k c)
      r.r_kinds;
    Format.fprintf ppf ")@,fairness (Jain): %.3f" r.r_fairness;
    (match r.r_deadlock with
    | None -> ()
    | Some p -> Format.fprintf ppf "@,deadlock: %d process(es) left parked" p);
    Format.fprintf ppf "@,@,%8s %-10s %7s %9s %8s %8s %6s" "pid" "kind" "slices"
      "fuel" "run" "blocked" "util%";
    List.iter
      (fun p ->
        Format.fprintf ppf "@,%8d %-10s %7d %9d %8d %8d %6.1f" p.p_pid p.p_kind
          p.p_slices p.p_fuel p.p_run p.p_blocked (100. *. p.p_util))
      r.r_procs;
    (match r.r_blocked with
    | [] -> ()
    | blocked ->
        Format.fprintf ppf "@,@,blocked time by resource:";
        List.iter
          (fun (res, d) ->
            Format.fprintf ppf "@,  %-14s %8d (%.1f%% of span)" res d (pct d r.r_span))
          blocked);
    if r.r_captures > 0 then
      Format.fprintf ppf
        "@,@,captures: %d (control points/capture %.1f, size/capture %.1f), \
         reinstates %d"
        r.r_captures r.r_cp_per_capture r.r_size_per_capture r.r_reinstates;
    Format.fprintf ppf "@,@,critical path: %d/%d of span on path (%.1f%%), %d hop(s)"
      r.r_critical_time r.r_span
      (pct r.r_critical_time r.r_span)
      (List.length r.r_critical);
    let hops = r.r_critical in
    let nh = List.length hops in
    List.iteri
      (fun i h ->
        if i < 12 || i >= nh - 4 then
          Format.fprintf ppf "@,  [ts %6d..%6d] pid %-5d %s" h.h_enter h.h_leave
            h.h_pid h.h_via
        else if i = 12 then Format.fprintf ppf "@,  ... (%d more hops)" (nh - 16))
      hops;
    Format.fprintf ppf "@]@."
end

(* ------------------------------------------------------------------ *)
(* Trace diff                                                          *)
(* ------------------------------------------------------------------ *)

module Diff = struct
  type divergence = {
    d_run : int;
    d_cpid : int;
    d_index : int;
    d_left : string option;
    d_right : string option;
  }

  (* The causal skeleton of one run: for each canonical pid (spawn
     order), its own sequence of scheduler-independent facts, plus a
     global stream (cpid -1) for deadlock. *)
  let skeleton (events : Trace.stamped array) =
    let canon : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let streams : (int, string list ref) Hashtbl.t = Hashtbl.create 64 in
    let next = ref 0 in
    let cpid pid =
      match Hashtbl.find_opt canon pid with Some c -> c | None -> -2
    in
    let push c item =
      match Hashtbl.find_opt streams c with
      | Some r -> r := item :: !r
      | None -> Hashtbl.add streams c (ref [ item ])
    in
    Array.iter
      (fun s ->
        match s.Trace.ev with
        | Event.Spawn { pid; parent; kind } ->
            let c = !next in
            incr next;
            Hashtbl.replace canon pid c;
            push c
              (Printf.sprintf "spawn kind=%s parent=%d" kind
                 (if parent = -1 then -1 else cpid parent))
        | Event.Spawn_batch { kind; nodes; _ } ->
            (* expand exactly as the equivalent individual spawns would:
               same canonical-pid assignment order, same facts — so a
               batched trace and its unbatched twin have equal skeletons *)
            Array.iter
              (fun (pid, parent) ->
                let c = !next in
                incr next;
                Hashtbl.replace canon pid c;
                push c
                  (Printf.sprintf "spawn kind=%s parent=%d" kind
                     (if parent = -1 then -1 else cpid parent)))
              nodes
        | Event.Exit { pid } -> push (cpid pid) "exit"
        | Event.Capture { pid; label; _ } ->
            push (cpid pid) (Printf.sprintf "capture label=%d" label)
        | Event.Reinstate { pid; label; _ } ->
            push (cpid pid) (Printf.sprintf "reinstate label=%d" label)
        | Event.Send { pid; chan } -> push (cpid pid) (Printf.sprintf "send chan=%d" chan)
        | Event.Recv { pid; chan } -> push (cpid pid) (Printf.sprintf "recv chan=%d" chan)
        | Event.Cancel { pid; scope; reason; pids } ->
            (* canonical pids; virtual-time-free, so mirrored workloads on
               the two schedulers keep aligned skeletons *)
            push (cpid pid)
              (Printf.sprintf "cancel scope=%d reason=%s pids=[%s]" (cpid scope)
                 reason
                 (String.concat ";"
                    (Array.to_list
                       (Array.map (fun p -> string_of_int (cpid p)) pids))))
        | Event.Timeout { pid; _ } -> push (cpid pid) "timeout"
        | Event.Crash { pid; fault } ->
            push (if pid >= 0 then cpid pid else -1)
              (Printf.sprintf "crash fault=%s" fault)
        | Event.Restart { pid; child; attempt; backoff = _; limit } ->
            push (cpid pid)
              (Printf.sprintf "restart child=%d attempt=%d limit=%d" (cpid child)
                 attempt limit)
        | Event.Invalid_controller { pid; label } ->
            push (cpid pid) (Printf.sprintf "invalid-controller label=%d" label)
        | Event.Deadlock { parked } -> push (-1) (Printf.sprintf "deadlock parked=%d" parked)
        | Event.Slice_begin _ | Event.Slice_end _ | Event.Park _ | Event.Wake _ -> ())
      events;
    let stream c =
      match Hashtbl.find_opt streams c with
      | Some r -> Array.of_list (List.rev !r)
      | None -> [||]
    in
    (!next, stream)

  let diff_run d_run left right =
    let nl, sl = skeleton left in
    let nr, sr = skeleton right in
    let diverged = ref None in
    let cmp_stream c =
      if !diverged = None then begin
        let a = sl c and b = sr c in
        let la = Array.length a and lb = Array.length b in
        let i = ref 0 in
        while
          !diverged = None && (!i < la || !i < lb)
        do
          let get arr l = if !i < l then Some arr.(!i) else None in
          let x = get a la and y = get b lb in
          if x <> y then
            diverged :=
              Some { d_run; d_cpid = c; d_index = !i; d_left = x; d_right = y };
          incr i
        done
      end
    in
    cmp_stream (-1);
    for c = 0 to max nl nr - 1 do
      cmp_stream c
    done;
    !diverged

  let diff left right =
    let lruns = Trace.runs left and rruns = Trace.runs right in
    let nl = Array.length lruns and nr = Array.length rruns in
    let diverged = ref None in
    for r = 0 to max nl nr - 1 do
      if !diverged = None then
        if r >= nl then
          diverged :=
            Some
              { d_run = r; d_cpid = -1; d_index = 0; d_left = None;
                d_right = Some "run" }
        else if r >= nr then
          diverged :=
            Some
              { d_run = r; d_cpid = -1; d_index = 0; d_left = Some "run";
                d_right = None }
        else diverged := diff_run r lruns.(r) rruns.(r)
    done;
    !diverged

  let to_json = function
    | None -> Json.Obj [ ("aligned", Json.Bool true) ]
    | Some d ->
        let side = function None -> Json.Null | Some s -> Json.Str s in
        Json.Obj
          [
            ("aligned", Json.Bool false);
            ("run", Json.Num (float_of_int d.d_run));
            ("pid", Json.Num (float_of_int d.d_cpid));
            ("index", Json.Num (float_of_int d.d_index));
            ("left", side d.d_left);
            ("right", side d.d_right);
          ]

  let pp ppf = function
    | None -> Format.fprintf ppf "aligned: no causal divergence@."
    | Some d ->
        let side = function None -> "<absent>" | Some s -> s in
        Format.fprintf ppf
          "diverged at run %d, canonical pid %d, event %d:@,  left:  %s@,  right: %s@."
          d.d_run d.d_cpid d.d_index (side d.d_left) (side d.d_right)
end
