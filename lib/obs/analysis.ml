module Json = Obs.Json
module Event = Obs.Event

(* ------------------------------------------------------------------ *)
(* Invariant checking                                                  *)
(* ------------------------------------------------------------------ *)

module Check = struct
  type violation = { v_seq : int; v_rule : string; v_msg : string }

  let rules =
    [
      ("seq-dense", "sequence numbers are base,base+1,... in file order");
      ("ts-monotone", "timestamps never decrease");
      ("slice-balance", "slice begin/end pairs balance, one open at a time");
      ("slice-time", "a slice's extent equals max(fuel,1)");
      ("spawn-unique", "each pid is spawned once and referenced only after");
      ("exit-once", "a pid exits once and emits nothing after death");
      ("park-pairing", "parks and wakes alternate with matching resources");
      ("capture-consistency", "captures prune live ancestors; reinstates match");
      ("deadlock-count", "deadlock parked count matches live parked processes");
      ( "cancel-propagation-complete",
        "a cancel discards every live non-future descendant of its scope" );
      ( "restart-intensity-bounded",
        "restart attempts stay within the declared intensity limit" );
      ( "no-orphan-waiters",
        "no fiber ends the run parked under a cancelled or pruned ancestor" );
      ( "span-balance",
        "span ids begin once; ends match an open begin by a known pid" );
    ]

  type status = Live | Exited | Pruned | Cancelled

  type pstate = {
    ps_parent : int;
    ps_kind : string;
    mutable ps_children : int list;
    mutable ps_status : status;
    mutable ps_parked : string option;
    mutable ps_park_unknown : bool;
        (** pre-window node whose park state at the cut is unknowable:
            the first in-window park or wake just resolves it *)
  }

  let run (events : Trace.stamped array) =
    let out = ref [] in
    let violate seq rule msg = out := { v_seq = seq; v_rule = rule; v_msg = msg } :: !out in
    let prev_ts = ref min_int in
    (* A nonzero base seq marks a flight-recorder window into the middle
       of a run.  Everything the window can prove is still checked, but
       obligations that need pre-window state — references to pids
       spawned before the cut, the slice/park state at the cut,
       pre-window captures and span begins, the deadlock census, the
       end-of-run quiescence checks — are relaxed rather than reported
       as false positives. *)
    let window = Array.length events > 0 && events.(0).Trace.seq > 0 in
    (* per-run state, reset at each root spawn *)
    let nodes : (int, pstate) Hashtbl.t = Hashtbl.create 64 in
    let labels : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    let open_slice = ref None in
    let n_parked = ref 0 in
    (* one stray slice end is legitimate at the top of a window: the
       slice it closes began before the cut *)
    let stray_end_ok = ref window in
    let reset_run seq =
      (match !open_slice with
      | Some (pid, _) ->
          violate seq "slice-balance"
            (Printf.sprintf "slice of pid %d still open at run boundary" pid)
      | None -> ());
      open_slice := None;
      stray_end_ok := false;
      Hashtbl.reset nodes;
      Hashtbl.reset labels;
      n_parked := 0
    in
    (* a pid first referenced mid-window was spawned before the cut:
       parent, ancestry and park state are unknowable *)
    let register_pre pid =
      let ps =
        { ps_parent = -2; ps_kind = "pre-window"; ps_children = [];
          ps_status = Live; ps_parked = None; ps_park_unknown = true }
      in
      Hashtbl.add nodes pid ps;
      ps
    in
    let find pid = Hashtbl.find_opt nodes pid in
    let rec is_ancestor anc pid =
      (* strict: anc is a proper ancestor of pid *)
      match find pid with
      | None -> false
      | Some ps -> ps.ps_parent = anc || (ps.ps_parent >= 0 && is_ancestor anc ps.ps_parent)
    in
    let rec prune_descendants pid =
      match find pid with
      | None -> ()
      | Some ps ->
          List.iter
            (fun c ->
              match find c with
              (* futures are independent trees: control operations in the
                 planting tree never discard them *)
              | Some cs when cs.ps_status = Live && cs.ps_kind <> "future" ->
                  (match cs.ps_parked with
                  | Some _ ->
                      cs.ps_parked <- None;
                      decr n_parked
                  | None -> ());
                  cs.ps_status <- Pruned;
                  prune_descendants c
              | _ -> ())
            ps.ps_children
    in
    (* A fiber still parked while some ancestor was cancelled or
       capture-pruned can never be woken by its (discarded) tree: it is
       leaked.  Checked at every quiescence point — deadlock, run
       boundary, end of trace. *)
    let scan_orphans seq =
      let dead_above pid =
        let rec go p =
          match find p with
          | None -> None
          | Some ps -> (
              match ps.ps_status with
              | Cancelled | Pruned -> Some p
              | Live | Exited -> if ps.ps_parent >= 0 then go ps.ps_parent else None)
        in
        match find pid with
        | Some ps when ps.ps_parent >= 0 -> go ps.ps_parent
        | _ -> None
      in
      Hashtbl.fold (fun pid ps acc -> (pid, ps) :: acc) nodes []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (pid, ps) ->
             match (ps.ps_status, ps.ps_parked) with
             | Live, Some r -> (
                 match dead_above pid with
                 | Some anc ->
                     violate seq "no-orphan-waiters"
                       (Printf.sprintf
                          "pid %d still parked on %s under dead ancestor %d" pid r
                          anc)
                 | None -> ())
             | _ -> ())
    in
    (* A dead (exited or pruned) pid may still close the slice it had
       open when it died; anything else is a violation. *)
    let check_alive seq pid what =
      match find pid with
      | None ->
          if window then (
            ignore (register_pre pid);
            true)
          else begin
            violate seq "spawn-unique"
              (Printf.sprintf "%s references pid %d, never spawned in this run" what
                 pid);
            false
          end
      | Some ps -> (
          match ps.ps_status with
          | Live -> true
          | Exited ->
              violate seq "exit-once" (Printf.sprintf "%s by exited pid %d" what pid);
              false
          | Pruned ->
              violate seq "exit-once" (Printf.sprintf "%s by pruned pid %d" what pid);
              false
          | Cancelled ->
              violate seq "exit-once"
                (Printf.sprintf "%s by cancelled pid %d" what pid);
              false)
    in
    let check_not_parked seq pid what =
      match find pid with
      | Some { ps_parked = Some r; _ } ->
          violate seq "park-pairing"
            (Printf.sprintf "%s by pid %d while parked on %s" what pid r)
      | _ -> ()
    in
    (* span ids are allocated per handle, never reset across runs, so
       the begin/end bookkeeping is global rather than per-run state *)
    let span_seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let span_open : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    (* flight-recorder dumps are trace suffixes: seq numbers stay dense
       but start wherever the ring's oldest surviving event fell *)
    let seq_base = if Array.length events = 0 then 0 else events.(0).Trace.seq in
    Array.iteri
      (fun i s ->
        let seq = s.Trace.seq in
        if seq <> seq_base + i then
          violate seq "seq-dense"
            (Printf.sprintf "event %d carries seq %d (base %d)" i seq seq_base);
        if s.Trace.ts < !prev_ts then
          violate seq "ts-monotone"
            (Printf.sprintf "ts %d after ts %d" s.Trace.ts !prev_ts);
        prev_ts := max !prev_ts s.Trace.ts;
        (* One spawned node, whether announced individually or inside a
           batch: the same spawn-unique obligations apply to each. *)
        let spawn_node seq pid parent kind =
          match find pid with
          | Some _ ->
              violate seq "spawn-unique"
                (Printf.sprintf "pid %d spawned twice in one run" pid)
          | None ->
              if parent <> -1 then (
                match find parent with
                | None ->
                    if window then
                      (register_pre parent).ps_children <- [ pid ]
                    else
                      violate seq "spawn-unique"
                        (Printf.sprintf "pid %d spawned by unknown parent %d" pid parent)
                | Some ps ->
                    (match ps.ps_status with
                    | Live -> ()
                    | Exited | Pruned | Cancelled ->
                        violate seq "spawn-unique"
                          (Printf.sprintf "pid %d spawned by dead parent %d (%s)" pid
                             parent kind));
                    ps.ps_children <- ps.ps_children @ [ pid ]);
              Hashtbl.add nodes pid
                { ps_parent = parent; ps_kind = kind; ps_children = [];
                  ps_status = Live; ps_parked = None; ps_park_unknown = false }
        in
        match s.Trace.ev with
        | Event.Spawn { pid; parent; kind } ->
            if parent = -1 then begin
              (* the previous run is over: anything still parked under a
                 cancelled/pruned ancestor stayed parked forever *)
              scan_orphans seq;
              reset_run seq
            end;
            spawn_node seq pid parent kind
        | Event.Spawn_batch { kind; nodes = batch; _ } ->
            (* pre-order: parents must already be known (or earlier in the
               batch), so the per-node checks run in listed order *)
            Array.iter (fun (pid, parent) -> spawn_node seq pid parent kind) batch
        | Event.Exit { pid } ->
            if check_alive seq pid "exit" then begin
              check_not_parked seq pid "exit";
              (Option.get (find pid)).ps_status <- Exited
            end
        | Event.Slice_begin { pid } ->
            (match !open_slice with
            | Some (opid, _) ->
                violate seq "slice-balance"
                  (Printf.sprintf "slice begin for pid %d while pid %d's slice is open"
                     pid opid)
            | None -> ());
            if check_alive seq pid "slice begin" then
              check_not_parked seq pid "slice begin";
            stray_end_ok := false;
            open_slice := Some (pid, s.Trace.ts)
        | Event.Slice_end { pid; fuel } -> (
            match !open_slice with
            | None ->
                (* the begin (and its ts, so slice-time too) predates a
                   window's cut — legitimate exactly once, at the top *)
                if !stray_end_ok then stray_end_ok := false
                else
                  violate seq "slice-balance"
                    (Printf.sprintf "slice end for pid %d with no slice open" pid)
            | Some (opid, ots) ->
                if opid <> pid then
                  violate seq "slice-balance"
                    (Printf.sprintf "slice end for pid %d closes pid %d's slice" pid opid)
                else begin
                  let extent = s.Trace.ts - ots in
                  let want = max fuel 1 in
                  if extent <> want then
                    violate seq "slice-time"
                      (Printf.sprintf
                         "slice of pid %d spans %d virtual time for fuel %d (want %d)"
                         pid extent fuel want)
                end;
                open_slice := None)
        | Event.Park { pid; resource } ->
            if check_alive seq pid "park" then begin
              let ps = Option.get (find pid) in
              ps.ps_park_unknown <- false;
              match ps.ps_parked with
              | Some r ->
                  violate seq "park-pairing"
                    (Printf.sprintf "pid %d parked on %s while already parked on %s" pid
                       resource r)
              | None ->
                  ps.ps_parked <- Some resource;
                  incr n_parked
            end
        | Event.Wake { pid; resource } ->
            if check_alive seq pid "wake" then begin
              let ps = Option.get (find pid) in
              match ps.ps_parked with
              | None ->
                  (* a pre-window pid's first wake matches a park before
                     the cut; after that its state is tracked exactly *)
                  if ps.ps_park_unknown then ps.ps_park_unknown <- false
                  else
                    violate seq "park-pairing"
                      (Printf.sprintf
                         "wake for pid %d, which is not parked (double wake?)" pid)
              | Some r ->
                  if r <> resource then
                    violate seq "park-pairing"
                      (Printf.sprintf "pid %d parked on %s but woken on %s" pid r resource);
                  ps.ps_parked <- None;
                  decr n_parked
            end
        | Event.Capture { pid; label; root_pid; size; _ } ->
            if check_alive seq pid "capture" then begin
              check_not_parked seq pid "capture";
              (match find root_pid with
              | None ->
                  if window then ignore (register_pre root_pid)
                  else
                    violate seq "capture-consistency"
                      (Printf.sprintf "capture at unknown root pid %d" root_pid)
              | Some rs ->
                  if rs.ps_status <> Live then
                    violate seq "capture-consistency"
                      (Printf.sprintf "capture at dead root pid %d" root_pid)
                  else if not (is_ancestor root_pid pid) && not window then
                    (* in a window the ancestor chain can pass through
                       pre-window nodes whose parents are unknowable *)
                    violate seq "capture-consistency"
                      (Printf.sprintf "capture root pid %d is not an ancestor of pid %d"
                         root_pid pid));
              prune_descendants root_pid;
              let sizes =
                match Hashtbl.find_opt labels label with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add labels label r;
                    r
              in
              sizes := size :: !sizes
            end
        | Event.Reinstate { pid; label; size } ->
            if check_alive seq pid "reinstate" then begin
              check_not_parked seq pid "reinstate";
              match Hashtbl.find_opt labels label with
              | None ->
                  if not window then
                    violate seq "capture-consistency"
                      (Printf.sprintf "reinstate of label %d, never captured in this run"
                         label)
              | Some sizes ->
                  if not (List.mem size !sizes) then
                    violate seq "capture-consistency"
                      (Printf.sprintf
                         "reinstate of label %d with size %d, no matching capture" label
                         size)
            end
        | Event.Send { pid; _ } ->
            if check_alive seq pid "send" then check_not_parked seq pid "send"
        | Event.Recv { pid; _ } ->
            if check_alive seq pid "recv" then check_not_parked seq pid "recv"
        | Event.Cancel { pid; scope; reason = _; pids } ->
            ignore (check_alive seq pid "cancel");
            (match find scope with
            | None ->
                if window then ignore (register_pre scope)
                else
                  violate seq "cancel-propagation-complete"
                    (Printf.sprintf "cancel of unknown scope pid %d" scope)
            | Some ss ->
                if ss.ps_status <> Live then
                  violate seq "cancel-propagation-complete"
                    (Printf.sprintf "cancel of dead scope pid %d" scope));
            Array.iter
              (fun q ->
                if q <> scope && not (is_ancestor scope q) && not window then
                  violate seq "cancel-propagation-complete"
                    (Printf.sprintf
                       "cancel of scope %d lists pid %d, not a descendant" scope q);
                match find q with
                | Some qs when qs.ps_status = Live ->
                    (match qs.ps_parked with
                    | Some _ ->
                        qs.ps_parked <- None;
                        decr n_parked
                    | None -> ());
                    qs.ps_status <- Cancelled
                | Some _ ->
                    violate seq "cancel-propagation-complete"
                      (Printf.sprintf "cancel of scope %d lists dead pid %d" scope q)
                | None ->
                    if window then (register_pre q).ps_status <- Cancelled
                    else
                      violate seq "cancel-propagation-complete"
                        (Printf.sprintf "cancel of scope %d lists unknown pid %d" scope
                           q))
              pids;
            (* completeness: the whole scope subtree must now be dead,
               futures (independent trees) excepted *)
            let rec check_empty p =
              match find p with
              | None -> ()
              | Some ps ->
                  List.iter
                    (fun c ->
                      match find c with
                      | Some cs when cs.ps_kind <> "future" ->
                          if cs.ps_status = Live then
                            violate seq "cancel-propagation-complete"
                              (Printf.sprintf
                                 "pid %d still live after cancel of scope %d" c scope);
                          check_empty c
                      | _ -> ())
                    ps.ps_children
            in
            check_empty scope
        | Event.Timeout { pid; _ } -> ignore (check_alive seq pid "timeout")
        | Event.Crash { pid; _ } ->
            if pid >= 0 then ignore (check_alive seq pid "crash")
        | Event.Restart { pid; child; attempt; backoff = _; limit } ->
            ignore (check_alive seq pid "restart");
            if find child = None then
              if window then ignore (register_pre child)
              else
                violate seq "restart-intensity-bounded"
                  (Printf.sprintf "restart references unknown child pid %d" child);
            if attempt < 1 || attempt > limit then
              violate seq "restart-intensity-bounded"
                (Printf.sprintf "restart attempt %d outside window limit %d" attempt
                   limit)
        | Event.Invalid_controller { pid; _ } -> ignore (check_alive seq pid "controller")
        | Event.Span_begin { pid; span; _ } ->
            if pid >= 0 then ignore (check_alive seq pid "span begin");
            if Hashtbl.mem span_seen span then
              violate seq "span-balance"
                (Printf.sprintf "span id %d begun twice" span)
            else begin
              Hashtbl.add span_seen span ();
              Hashtbl.add span_open span ()
            end
        | Event.Span_end { pid; span } ->
            if pid >= 0 then ignore (check_alive seq pid "span end");
            if Hashtbl.mem span_open span then Hashtbl.remove span_open span
            else if window && not (Hashtbl.mem span_seen span) then
              (* begun before the cut; remember the id so an in-window
                 double end is still caught *)
              Hashtbl.add span_seen span ()
            else
              violate seq "span-balance"
                (Printf.sprintf "span end for id %d with no open begin" span)
        | Event.Deadlock { parked } ->
            (* a window's park census misses fibers parked at the cut *)
            if parked <> !n_parked && not window then
              violate seq "deadlock-count"
                (Printf.sprintf "deadlock reports %d parked, trace shows %d" parked
                   !n_parked))
      events;
    (* a window's last event is wherever the ring stopped — mid-run, so
       the end-of-trace quiescence obligations do not apply.  Likewise a
       trace that ends at a crash: that is a flight dump's cut point
       (the recorder dumps the moment the Crash passes through), and the
       interrupted slice is still open. *)
    let crash_cut =
      Array.length events > 0
      &&
      match events.(Array.length events - 1).Trace.ev with
      | Event.Crash _ -> true
      | _ -> false
    in
    if not (window || crash_cut) then begin
      (match !open_slice with
      | Some (pid, _) ->
          violate (-1) "slice-balance"
            (Printf.sprintf "slice of pid %d still open at end of trace" pid)
      | None -> ());
      scan_orphans (-1)
    end;
    List.rev !out

  let to_json vs =
    Json.Arr
      (List.map
         (fun v ->
           Json.Obj
             [
               ("seq", Json.Num (float_of_int v.v_seq));
               ("rule", Json.Str v.v_rule);
               ("msg", Json.Str v.v_msg);
             ])
         vs)

  let pp ppf vs =
    match vs with
    | [] -> Format.fprintf ppf "ok: no invariant violations@."
    | vs ->
        List.iter
          (fun v ->
            Format.fprintf ppf "violation [%s] seq=%d: %s@." v.v_rule v.v_seq v.v_msg)
          vs;
        Format.fprintf ppf "%d violation(s)@." (List.length vs)
end

(* ------------------------------------------------------------------ *)
(* Causal report                                                       *)
(* ------------------------------------------------------------------ *)

module Report = struct
  type proc = {
    p_pid : int;
    p_kind : string;
    p_slices : int;
    p_fuel : int;
    p_run : int;
    p_blocked : int;
    p_util : float;
  }

  type hop = { h_pid : int; h_enter : int; h_leave : int; h_via : string }

  type span_row = {
    sp_name : string;
    sp_count : int;
    sp_open : int;
    sp_total : int;
    sp_mean : float;
    sp_max : int;
    sp_on_path : int;
  }

  type t = {
    r_events : int;
    r_span : int;
    r_procs : proc list;
    r_kinds : (string * int) list;
    r_fairness : float;
    r_blocked : (string * int) list;
    r_captures : int;
    r_cp_per_capture : float;
    r_size_per_capture : float;
    r_reinstates : int;
    r_critical : hop list;
    r_critical_time : int;
    r_spans : span_row list;
    r_deadlock : int option;
  }

  (* How a pid became runnable: the latest of its spawn, its wakes, its
     children's exits (a fork parent resumes when its last child
     delivers), the captures rooted at it (the controller body runs in
     the root's place) and its own previous slice ends (preemption)
     decides which earlier slice the critical path jumps to. *)
  type enabler =
    | En_spawn of string
    | En_wake of string
    | En_join
    | En_capture
    | En_end

  let critical_path (run : Trace.run) =
    let events = run.Trace.r_events in
    let slices = run.Trace.r_slices in
    let nslices = Array.length slices in
    if nslices = 0 then []
    else begin
      (* Per-pid enabling events, in index order. *)
      let enablers : (int, (int * enabler) list ref) Hashtbl.t = Hashtbl.create 64 in
      let parents : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let push pid i e =
        match Hashtbl.find_opt enablers pid with
        | Some r -> r := (i, e) :: !r
        | None -> Hashtbl.add enablers pid (ref [ (i, e) ])
      in
      Array.iteri
        (fun i s ->
          match s.Trace.ev with
          | Event.Spawn { pid; parent; kind } ->
              Hashtbl.replace parents pid parent;
              push pid i (En_spawn kind)
          | Event.Spawn_batch { kind; nodes; _ } ->
              Array.iter
                (fun (pid, parent) ->
                  Hashtbl.replace parents pid parent;
                  push pid i (En_spawn kind))
                nodes
          | Event.Wake { pid; resource } -> push pid i (En_wake resource)
          | Event.Exit { pid } -> (
              match Hashtbl.find_opt parents pid with
              | Some p when p >= 0 -> push p i En_join
              | _ -> ())
          | Event.Capture { root_pid; _ } -> push root_pid i En_capture
          | Event.Slice_end { pid; _ } -> push pid i En_end
          | _ -> ())
        events;
      let enablers =
        let t = Hashtbl.create (Hashtbl.length enablers) in
        Hashtbl.iter (fun pid r -> Hashtbl.add t pid (Array.of_list (List.rev !r))) enablers;
        t
      in
      (* Greatest enabling event of [pid] strictly before index [i]. *)
      let latest_before pid i =
        match Hashtbl.find_opt enablers pid with
        | None -> None
        | Some arr ->
            let lo = ref 0 and hi = ref (Array.length arr) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if fst arr.(mid) < i then lo := mid + 1 else hi := mid
            done;
            if !lo = 0 then None else Some arr.(!lo - 1)
      in
      let hops = ref [] in
      let rec walk sidx =
        let sl = slices.(sidx) in
        let enter = sl.Trace.sl_begin_ts and leave = sl.Trace.sl_end_ts in
        let continue via = hops := (sl.Trace.sl_pid, enter, leave, via) :: !hops in
        let hop via i =
          continue via;
          let prev = run.Trace.r_actor.(i) in
          if prev >= 0 && prev < sidx then walk prev
        in
        match latest_before sl.Trace.sl_pid sl.Trace.sl_begin with
        | None -> continue "start"
        | Some (i, En_end) -> hop "preempt" i
        | Some (i, En_spawn kind) -> hop ("spawn:" ^ kind) i
        | Some (i, En_wake resource) -> hop ("wake:" ^ resource) i
        | Some (i, En_join) -> hop "join" i
        | Some (i, En_capture) -> hop "capture" i
      in
      walk (nslices - 1);
      List.map
        (fun (h_pid, h_enter, h_leave, h_via) -> { h_pid; h_enter; h_leave; h_via })
        !hops
    end

  let jain xs =
    match xs with
    | [] -> 1.
    | xs ->
        let n = float_of_int (List.length xs) in
        let sum = List.fold_left (fun a x -> a +. x) 0. xs in
        let sq = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
        if sq = 0. then 1. else sum *. sum /. (n *. sq)

  let of_run (run : Trace.run) =
    let span = run.Trace.r_span in
    let procs =
      Array.to_list run.Trace.r_nodes
      |> List.map (fun n ->
             let blocked =
               List.fold_left (fun a (_, d) -> a + d) 0 n.Trace.n_blocked
             in
             {
               p_pid = n.Trace.n_pid;
               p_kind = n.Trace.n_kind;
               p_slices = n.Trace.n_slices;
               p_fuel = n.Trace.n_fuel;
               p_run = n.Trace.n_run;
               p_blocked = blocked;
               p_util =
                 (if span = 0 then 0.
                  else float_of_int n.Trace.n_run /. float_of_int span);
             })
    in
    let kinds =
      let tbl = Hashtbl.create 8 in
      Array.iter
        (fun n ->
          let k = n.Trace.n_kind in
          Hashtbl.replace tbl k
            (1 + match Hashtbl.find_opt tbl k with Some c -> c | None -> 0))
        run.Trace.r_nodes;
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let captures = ref 0 and cps = ref 0 and sizes = ref 0 and reinstates = ref 0 in
    Array.iter
      (fun s ->
        match s.Trace.ev with
        | Event.Capture { control_points; size; _ } ->
            incr captures;
            cps := !cps + control_points;
            sizes := !sizes + size
        | Event.Reinstate _ -> incr reinstates
        | _ -> ())
      run.Trace.r_events;
    let mean total n = if n = 0 then 0. else float_of_int total /. float_of_int n in
    let critical = critical_path run in
    (* Fold spans against the critical path: per name, closed-span
       duration stats plus the virtual time a critical hop ran while
       the span was open (how much of the span was load-bearing). *)
    let spans =
      let open_tbl : (int, string * int) Hashtbl.t = Hashtbl.create 16 in
      let rows : (string, span_row ref * (int * int) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let row name =
        match Hashtbl.find_opt rows name with
        | Some r -> r
        | None ->
            let r =
              ( ref
                  { sp_name = name; sp_count = 0; sp_open = 0; sp_total = 0;
                    sp_mean = 0.; sp_max = 0; sp_on_path = 0 },
                ref [] )
            in
            Hashtbl.add rows name r;
            r
      in
      Array.iter
        (fun s ->
          match s.Trace.ev with
          | Event.Span_begin { span; name; _ } ->
              Hashtbl.replace open_tbl span (name, s.Trace.ts);
              let r, _ = row name in
              r := { !r with sp_count = !r.sp_count + 1 }
          | Event.Span_end { span; _ } -> (
              match Hashtbl.find_opt open_tbl span with
              | None -> ()
              | Some (name, t0) ->
                  Hashtbl.remove open_tbl span;
                  let d = s.Trace.ts - t0 in
                  let r, ivals = row name in
                  ivals := (t0, s.Trace.ts) :: !ivals;
                  r := { !r with sp_total = !r.sp_total + d; sp_max = max !r.sp_max d })
          | _ -> ())
        run.Trace.r_events;
      Hashtbl.iter
        (fun _ (name, _) ->
          let r, _ = row name in
          r := { !r with sp_open = !r.sp_open + 1 })
        open_tbl;
      let overlap a b =
        List.fold_left
          (fun acc h ->
            let lo = max a h.h_enter and hi = min b h.h_leave in
            acc + max 0 (hi - lo))
          0 critical
      in
      Hashtbl.fold
        (fun _ (r, ivals) out ->
          let closed = List.length !ivals in
          let on_path =
            List.fold_left (fun acc (a, b) -> acc + overlap a b) 0 !ivals
          in
          { !r with
            sp_mean =
              (if closed = 0 then 0.
               else float_of_int !r.sp_total /. float_of_int closed);
            sp_on_path = on_path }
          :: out)
        rows []
      |> List.sort (fun a b -> String.compare a.sp_name b.sp_name)
    in
    {
      r_events = Array.length run.Trace.r_events;
      r_span = span;
      r_procs = procs;
      r_kinds = kinds;
      r_fairness =
        jain
          (List.filter_map
             (fun p -> if p.p_slices > 0 then Some (float_of_int p.p_run) else None)
             procs);
      r_blocked = Trace.blocked_total run;
      r_captures = !captures;
      r_cp_per_capture = mean !cps !captures;
      r_size_per_capture = mean !sizes !captures;
      r_reinstates = !reinstates;
      r_critical = critical;
      r_critical_time =
        List.fold_left (fun a h -> a + (h.h_leave - h.h_enter)) 0 critical;
      r_spans = spans;
      r_deadlock = run.Trace.r_deadlock;
    }

  let of_trace events = Trace.runs events |> Array.to_list |> List.map Trace.reconstruct
                        |> List.map of_run

  let to_json r =
    let num n = Json.Num (float_of_int n) in
    Json.Obj
      [
        ("events", num r.r_events);
        ("span", num r.r_span);
        ("processes", num (List.length r.r_procs));
        ("kinds", Json.Obj (List.map (fun (k, c) -> (k, num c)) r.r_kinds));
        ("fairness", Json.Num r.r_fairness);
        ( "utilization",
          Json.Arr
            (List.map
               (fun p ->
                 Json.Obj
                   [
                     ("pid", num p.p_pid);
                     ("kind", Json.Str p.p_kind);
                     ("slices", num p.p_slices);
                     ("fuel", num p.p_fuel);
                     ("run", num p.p_run);
                     ("blocked", num p.p_blocked);
                     ("util", Json.Num p.p_util);
                   ])
               r.r_procs) );
        ("blocked", Json.Obj (List.map (fun (k, d) -> (k, num d)) r.r_blocked));
        ( "captures",
          Json.Obj
            [
              ("count", num r.r_captures);
              ("control_points_mean", Json.Num r.r_cp_per_capture);
              ("size_mean", Json.Num r.r_size_per_capture);
              ("reinstates", num r.r_reinstates);
            ] );
        ( "critical_path",
          Json.Obj
            [
              ("time", num r.r_critical_time);
              ("hops", num (List.length r.r_critical));
              ( "path",
                Json.Arr
                  (List.map
                     (fun h ->
                       Json.Obj
                         [
                           ("pid", num h.h_pid);
                           ("enter", num h.h_enter);
                           ("leave", num h.h_leave);
                           ("via", Json.Str h.h_via);
                         ])
                     r.r_critical) );
            ] );
        ( "spans",
          Json.Arr
            (List.map
               (fun sp ->
                 Json.Obj
                   [
                     ("name", Json.Str sp.sp_name);
                     ("count", num sp.sp_count);
                     ("open", num sp.sp_open);
                     ("total", num sp.sp_total);
                     ("mean", Json.Num sp.sp_mean);
                     ("max", num sp.sp_max);
                     ("on_path", num sp.sp_on_path);
                   ])
               r.r_spans) );
        ( "deadlock",
          match r.r_deadlock with None -> Json.Null | Some p -> num p );
      ]

  let pp ?top ppf r =
    let pct part whole =
      if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
    in
    Format.fprintf ppf "@[<v>run: %d events, span %d, %d processes (" r.r_events
      r.r_span (List.length r.r_procs);
    List.iteri
      (fun i (k, c) -> Format.fprintf ppf "%s%s %d" (if i > 0 then ", " else "") k c)
      r.r_kinds;
    Format.fprintf ppf ")@,fairness (Jain): %.3f" r.r_fairness;
    (match r.r_deadlock with
    | None -> ()
    | Some p -> Format.fprintf ppf "@,deadlock: %d process(es) left parked" p);
    Format.fprintf ppf "@,@,%8s %-10s %7s %9s %8s %8s %6s" "pid" "kind" "slices"
      "fuel" "run" "blocked" "util%";
    let shown, omitted =
      match top with
      | Some n when n >= 0 && List.length r.r_procs > n ->
          (* biggest consumers of virtual time first; ties by pid *)
          let sorted =
            List.stable_sort (fun a b -> compare (b.p_run, a.p_pid) (a.p_run, b.p_pid))
              r.r_procs
          in
          let rec take k = function
            | x :: rest when k > 0 -> x :: take (k - 1) rest
            | _ -> []
          in
          (take n sorted, List.length r.r_procs - n)
      | _ -> (r.r_procs, 0)
    in
    List.iter
      (fun p ->
        Format.fprintf ppf "@,%8d %-10s %7d %9d %8d %8d %6.1f" p.p_pid p.p_kind
          p.p_slices p.p_fuel p.p_run p.p_blocked (100. *. p.p_util))
      shown;
    if omitted > 0 then Format.fprintf ppf "@,  ... (%d more processes)" omitted;
    (match r.r_blocked with
    | [] -> ()
    | blocked ->
        Format.fprintf ppf "@,@,blocked time by resource:";
        List.iter
          (fun (res, d) ->
            Format.fprintf ppf "@,  %-14s %8d (%.1f%% of span)" res d (pct d r.r_span))
          blocked);
    if r.r_captures > 0 then
      Format.fprintf ppf
        "@,@,captures: %d (control points/capture %.1f, size/capture %.1f), \
         reinstates %d"
        r.r_captures r.r_cp_per_capture r.r_size_per_capture r.r_reinstates;
    (match r.r_spans with
    | [] -> ()
    | spans ->
        Format.fprintf ppf "@,@,spans: %-14s %6s %5s %8s %8s %8s %8s" "name" "count"
          "open" "total" "mean" "max" "on-path";
        List.iter
          (fun sp ->
            Format.fprintf ppf "@,       %-14s %6d %5d %8d %8.1f %8d %8d" sp.sp_name
              sp.sp_count sp.sp_open sp.sp_total sp.sp_mean sp.sp_max sp.sp_on_path)
          spans);
    Format.fprintf ppf "@,@,critical path: %d/%d of span on path (%.1f%%), %d hop(s)"
      r.r_critical_time r.r_span
      (pct r.r_critical_time r.r_span)
      (List.length r.r_critical);
    let hops = r.r_critical in
    let nh = List.length hops in
    List.iteri
      (fun i h ->
        if i < 12 || i >= nh - 4 then
          Format.fprintf ppf "@,  [ts %6d..%6d] pid %-5d %s" h.h_enter h.h_leave
            h.h_pid h.h_via
        else if i = 12 then Format.fprintf ppf "@,  ... (%d more hops)" (nh - 16))
      hops;
    Format.fprintf ppf "@]@."
end

(* ------------------------------------------------------------------ *)
(* Trace diff                                                          *)
(* ------------------------------------------------------------------ *)

module Diff = struct
  type divergence = {
    d_run : int;
    d_cpid : int;
    d_index : int;
    d_left : string option;
    d_right : string option;
  }

  (* The causal skeleton of one run: for each canonical pid (spawn
     order), its own sequence of scheduler-independent facts, plus a
     global stream (cpid -1) for deadlock. *)
  let skeleton (events : Trace.stamped array) =
    let canon : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let streams : (int, string list ref) Hashtbl.t = Hashtbl.create 64 in
    (* span ids are allocation-order artifacts; only names are
       scheduler-independent, so skeleton facts carry the name *)
    let span_names : (int, string) Hashtbl.t = Hashtbl.create 16 in
    let next = ref 0 in
    let cpid pid =
      match Hashtbl.find_opt canon pid with Some c -> c | None -> -2
    in
    let push c item =
      match Hashtbl.find_opt streams c with
      | Some r -> r := item :: !r
      | None -> Hashtbl.add streams c (ref [ item ])
    in
    Array.iter
      (fun s ->
        match s.Trace.ev with
        | Event.Spawn { pid; parent; kind } ->
            let c = !next in
            incr next;
            Hashtbl.replace canon pid c;
            push c
              (Printf.sprintf "spawn kind=%s parent=%d" kind
                 (if parent = -1 then -1 else cpid parent))
        | Event.Spawn_batch { kind; nodes; _ } ->
            (* expand exactly as the equivalent individual spawns would:
               same canonical-pid assignment order, same facts — so a
               batched trace and its unbatched twin have equal skeletons *)
            Array.iter
              (fun (pid, parent) ->
                let c = !next in
                incr next;
                Hashtbl.replace canon pid c;
                push c
                  (Printf.sprintf "spawn kind=%s parent=%d" kind
                     (if parent = -1 then -1 else cpid parent)))
              nodes
        | Event.Exit { pid } -> push (cpid pid) "exit"
        | Event.Capture { pid; label; _ } ->
            push (cpid pid) (Printf.sprintf "capture label=%d" label)
        | Event.Reinstate { pid; label; _ } ->
            push (cpid pid) (Printf.sprintf "reinstate label=%d" label)
        | Event.Send { pid; chan } -> push (cpid pid) (Printf.sprintf "send chan=%d" chan)
        | Event.Recv { pid; chan } -> push (cpid pid) (Printf.sprintf "recv chan=%d" chan)
        | Event.Cancel { pid; scope; reason; pids } ->
            (* canonical pids; virtual-time-free, so mirrored workloads on
               the two schedulers keep aligned skeletons *)
            push (cpid pid)
              (Printf.sprintf "cancel scope=%d reason=%s pids=[%s]" (cpid scope)
                 reason
                 (String.concat ";"
                    (Array.to_list
                       (Array.map (fun p -> string_of_int (cpid p)) pids))))
        | Event.Timeout { pid; _ } -> push (cpid pid) "timeout"
        | Event.Crash { pid; fault } ->
            push (if pid >= 0 then cpid pid else -1)
              (Printf.sprintf "crash fault=%s" fault)
        | Event.Restart { pid; child; attempt; backoff = _; limit } ->
            push (cpid pid)
              (Printf.sprintf "restart child=%d attempt=%d limit=%d" (cpid child)
                 attempt limit)
        | Event.Invalid_controller { pid; label } ->
            push (cpid pid) (Printf.sprintf "invalid-controller label=%d" label)
        | Event.Span_begin { pid; span; name; _ } ->
            Hashtbl.replace span_names span name;
            push (cpid pid) (Printf.sprintf "sb:%s" name)
        | Event.Span_end { pid; span } ->
            let name =
              match Hashtbl.find_opt span_names span with
              | Some n -> n
              | None -> "span"
            in
            push (cpid pid) (Printf.sprintf "se:%s" name)
        | Event.Deadlock { parked } -> push (-1) (Printf.sprintf "deadlock parked=%d" parked)
        | Event.Slice_begin _ | Event.Slice_end _ | Event.Park _ | Event.Wake _ -> ())
      events;
    let stream c =
      match Hashtbl.find_opt streams c with
      | Some r -> Array.of_list (List.rev !r)
      | None -> [||]
    in
    (!next, stream)

  let diff_run d_run left right =
    let nl, sl = skeleton left in
    let nr, sr = skeleton right in
    let diverged = ref None in
    let cmp_stream c =
      if !diverged = None then begin
        let a = sl c and b = sr c in
        let la = Array.length a and lb = Array.length b in
        let i = ref 0 in
        while
          !diverged = None && (!i < la || !i < lb)
        do
          let get arr l = if !i < l then Some arr.(!i) else None in
          let x = get a la and y = get b lb in
          if x <> y then
            diverged :=
              Some { d_run; d_cpid = c; d_index = !i; d_left = x; d_right = y };
          incr i
        done
      end
    in
    cmp_stream (-1);
    for c = 0 to max nl nr - 1 do
      cmp_stream c
    done;
    !diverged

  let diff left right =
    let lruns = Trace.runs left and rruns = Trace.runs right in
    let nl = Array.length lruns and nr = Array.length rruns in
    let diverged = ref None in
    for r = 0 to max nl nr - 1 do
      if !diverged = None then
        if r >= nl then
          diverged :=
            Some
              { d_run = r; d_cpid = -1; d_index = 0; d_left = None;
                d_right = Some "run" }
        else if r >= nr then
          diverged :=
            Some
              { d_run = r; d_cpid = -1; d_index = 0; d_left = Some "run";
                d_right = None }
        else diverged := diff_run r lruns.(r) rruns.(r)
    done;
    !diverged

  let to_json = function
    | None -> Json.Obj [ ("aligned", Json.Bool true) ]
    | Some d ->
        let side = function None -> Json.Null | Some s -> Json.Str s in
        Json.Obj
          [
            ("aligned", Json.Bool false);
            ("run", Json.Num (float_of_int d.d_run));
            ("pid", Json.Num (float_of_int d.d_cpid));
            ("index", Json.Num (float_of_int d.d_index));
            ("left", side d.d_left);
            ("right", side d.d_right);
          ]

  let pp ppf = function
    | None -> Format.fprintf ppf "aligned: no causal divergence@."
    | Some d ->
        let side = function None -> "<absent>" | Some s -> s in
        Format.fprintf ppf
          "diverged at run %d, canonical pid %d, event %d:@,  left:  %s@,  right: %s@."
          d.d_run d.d_cpid d.d_index (side d.d_left) (side d.d_right)
end

(* ------------------------------------------------------------------ *)
(* Live snapshot (ptrace top)                                          *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  (* Incremental fold over a (possibly still growing) event stream:
     feed events as they arrive, render the current state at any time.
     Everything here is derived from events alone, so it works on a
     flight-recorder dump or a live tail equally. *)
  type t = {
    mutable sn_events : int;
    mutable sn_clock : int;
    mutable sn_spawned : int;
    mutable sn_exited : int;
    mutable sn_cancelled : int;
    mutable sn_crashes : int;
    mutable sn_parked : int;
    mutable sn_deadlock : int option;
    mutable sn_last_pid : int;
    parked_by : (string, int) Hashtbl.t;
    blocked_by : (string, int) Hashtbl.t;
    park_since : (int, string * int) Hashtbl.t;
    wake_at : (int, int) Hashtbl.t;
    open_spans : (int, string * int) Hashtbl.t;
    sn_mx : Obs.Metrics.t;
  }

  let create () =
    {
      sn_events = 0;
      sn_clock = 0;
      sn_spawned = 0;
      sn_exited = 0;
      sn_cancelled = 0;
      sn_crashes = 0;
      sn_parked = 0;
      sn_deadlock = None;
      sn_last_pid = -1;
      parked_by = Hashtbl.create 8;
      blocked_by = Hashtbl.create 8;
      park_since = Hashtbl.create 64;
      wake_at = Hashtbl.create 64;
      open_spans = Hashtbl.create 16;
      sn_mx = Obs.Metrics.create ();
    }

  let bump tbl k d =
    Hashtbl.replace tbl k
      (d + match Hashtbl.find_opt tbl k with Some v -> v | None -> 0)

  let feed t (s : Trace.stamped) =
    t.sn_events <- t.sn_events + 1;
    t.sn_clock <- max t.sn_clock s.Trace.ts;
    match s.Trace.ev with
    | Event.Spawn { pid; _ } ->
        t.sn_spawned <- t.sn_spawned + 1;
        ignore pid
    | Event.Spawn_batch { nodes; _ } -> t.sn_spawned <- t.sn_spawned + Array.length nodes
    | Event.Exit _ -> t.sn_exited <- t.sn_exited + 1
    | Event.Slice_begin { pid } ->
        t.sn_last_pid <- pid;
        (match Hashtbl.find_opt t.wake_at pid with
        | Some wts ->
            Hashtbl.remove t.wake_at pid;
            Obs.Metrics.observe t.sn_mx "wake.to.run" (s.Trace.ts - wts)
        | None -> ())
    | Event.Slice_end { fuel; _ } -> Obs.Metrics.observe t.sn_mx "slice.fuel" fuel
    | Event.Park { pid; resource } ->
        t.sn_parked <- t.sn_parked + 1;
        bump t.parked_by resource 1;
        Hashtbl.replace t.park_since pid (resource, s.Trace.ts)
    | Event.Wake { pid; resource } ->
        t.sn_parked <- max 0 (t.sn_parked - 1);
        bump t.parked_by resource (-1);
        Hashtbl.replace t.wake_at pid s.Trace.ts;
        (match Hashtbl.find_opt t.park_since pid with
        | Some (r, since) ->
            Hashtbl.remove t.park_since pid;
            bump t.blocked_by r (s.Trace.ts - since)
        | None -> ())
    | Event.Cancel { pids; _ } ->
        t.sn_cancelled <- t.sn_cancelled + Array.length pids;
        Array.iter
          (fun pid ->
            match Hashtbl.find_opt t.park_since pid with
            | Some (r, since) ->
                Hashtbl.remove t.park_since pid;
                t.sn_parked <- max 0 (t.sn_parked - 1);
                bump t.parked_by r (-1);
                bump t.blocked_by r (s.Trace.ts - since)
            | None -> ())
          pids
    | Event.Crash _ -> t.sn_crashes <- t.sn_crashes + 1
    | Event.Deadlock { parked } -> t.sn_deadlock <- Some parked
    | Event.Span_begin { span; name; _ } ->
        Hashtbl.replace t.open_spans span (name, s.Trace.ts)
    | Event.Span_end { span; _ } -> (
        match Hashtbl.find_opt t.open_spans span with
        | Some (_, t0) ->
            Hashtbl.remove t.open_spans span;
            Obs.Metrics.observe t.sn_mx "span.duration" (s.Trace.ts - t0)
        | None -> ())
    | Event.Capture _ | Event.Reinstate _ | Event.Send _ | Event.Recv _
    | Event.Timeout _ | Event.Restart _ | Event.Invalid_controller _ ->
        ()

  let runnable t =
    max 0 (t.sn_spawned - t.sn_exited - t.sn_cancelled - t.sn_parked)

  let top_blocked ?(n = 5) t =
    Hashtbl.fold
      (fun r d acc ->
        let now = match Hashtbl.find_opt t.parked_by r with Some c -> c | None -> 0 in
        (r, d, now) :: acc)
      t.blocked_by []
    |> fun base ->
    (* resources currently parked on but never yet woken *)
    Hashtbl.fold
      (fun r c acc ->
        if c > 0 && not (Hashtbl.mem t.blocked_by r) then (r, 0, c) :: acc else acc)
      t.parked_by base
    |> List.sort (fun (ra, da, ca) (rb, db, cb) ->
           compare (db, cb, ra) (da, ca, rb))
    |> fun l ->
    let rec take k = function x :: rest when k > 0 -> x :: take (k - 1) rest | _ -> [] in
    take n l

  let pp ppf t =
    let q name p =
      match Obs.Metrics.find_sketch t.sn_mx name with
      | None -> Format.asprintf "%8s" "-"
      | Some sk -> Format.asprintf "%8.0f" (Obs.Metrics.Sketch.quantile sk p)
    in
    let qline name =
      Format.asprintf "p50 %s  p99 %s  p999 %s  (n=%d)" (q name 0.5) (q name 0.99)
        (q name 0.999)
        (match Obs.Metrics.find_sketch t.sn_mx name with
        | Some sk -> Obs.Metrics.Sketch.count sk
        | None -> 0)
    in
    Format.fprintf ppf "@[<v>clock %d  events %d  last pid %d%s@,"
      t.sn_clock t.sn_events t.sn_last_pid
      (match t.sn_deadlock with
      | Some p -> Printf.sprintf "  DEADLOCK(%d parked)" p
      | None -> "");
    Format.fprintf ppf
      "fibers: %d spawned  %d exited  %d cancelled  %d crashes  %d parked  ~%d runnable@,"
      t.sn_spawned t.sn_exited t.sn_cancelled t.sn_crashes t.sn_parked (runnable t);
    Format.fprintf ppf "slice fuel:    %s@," (qline "slice.fuel");
    Format.fprintf ppf "wake-to-run:   %s@," (qline "wake.to.run");
    Format.fprintf ppf "span duration: %s  (%d open)@," (qline "span.duration")
      (Hashtbl.length t.open_spans);
    (match top_blocked t with
    | [] -> ()
    | top ->
        Format.fprintf ppf "blocked resources (cumulative vt, now parked):@,";
        List.iter
          (fun (r, d, now) -> Format.fprintf ppf "  %-16s %10d %6d@," r d now)
          top);
    Format.fprintf ppf "@]"
end

(* ------------------------------------------------------------------ *)
(* SLO rollup.                                                         *)
(* ------------------------------------------------------------------ *)

module Slo = struct
  type scen = {
    sc_name : string;
    mutable sc_requests : int;
    mutable sc_completed : int;
    mutable sc_timedout : int;
    mutable sc_cancelled : int;
    mutable sc_crashed : int;
    mutable sc_open : int;
    sc_latency : Obs.Metrics.Sketch.t;
    sc_service : Obs.Metrics.Sketch.t;
  }

  type t = {
    slo_events : int;
    slo_span : int;
    slo_fairness : float;
    slo_scens : scen list;
  }

  (* The load generator's span conventions (see Pcont_load.Load): a
     request span is named after its scenario (no '/'); a
     "<scenario>/service" child covers the handler work; zero-length
     "<scenario>/timedout" / "/cancelled" / "/crashed" children mark
     the request's fate.  Everything else in the trace is ignored. *)

  let of_trace (events : Trace.stamped array) =
    let scens : (string, scen) Hashtbl.t = Hashtbl.create 8 in
    let scen name =
      match Hashtbl.find_opt scens name with
      | Some s -> s
      | None ->
          let s =
            {
              sc_name = name;
              sc_requests = 0;
              sc_completed = 0;
              sc_timedout = 0;
              sc_cancelled = 0;
              sc_crashed = 0;
              sc_open = 0;
              sc_latency = Obs.Metrics.Sketch.create ();
              sc_service = Obs.Metrics.Sketch.create ();
            }
          in
          Hashtbl.add scens name s;
          s
    in
    (* open span id -> (name, begin ts); request ids additionally map to
       their fate once a marker child lands *)
    let open_spans : (int, string * int) Hashtbl.t = Hashtbl.create 64 in
    let fates : (int, string) Hashtbl.t = Hashtbl.create 64 in
    (* per-pid on-CPU virtual time for the fairness index *)
    let slice_open : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let on_cpu : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let first_ts = ref max_int and last_ts = ref min_int in
    Array.iter
      (fun s ->
        let ts = s.Trace.ts in
        if ts < !first_ts then first_ts := ts;
        if ts > !last_ts then last_ts := ts;
        match s.Trace.ev with
        | Obs.Event.Span_begin { span; parent; name; _ } -> (
            Hashtbl.replace open_spans span (name, ts);
            match String.index_opt name '/' with
            | None -> (scen name).sc_requests <- (scen name).sc_requests + 1
            | Some i -> (
                match String.sub name (i + 1) (String.length name - i - 1) with
                | ("timedout" | "cancelled" | "crashed") as fate ->
                    if parent >= 0 then Hashtbl.replace fates parent fate
                | _ -> ()))
        | Obs.Event.Span_end { span; _ } -> (
            match Hashtbl.find_opt open_spans span with
            | None -> ()
            | Some (name, t0) -> (
                Hashtbl.remove open_spans span;
                let d = ts - t0 in
                match String.index_opt name '/' with
                | None -> (
                    let sc = scen name in
                    match Hashtbl.find_opt fates span with
                    | None ->
                        sc.sc_completed <- sc.sc_completed + 1;
                        Obs.Metrics.Sketch.observe sc.sc_latency d
                    | Some "timedout" -> sc.sc_timedout <- sc.sc_timedout + 1
                    | Some "cancelled" -> sc.sc_cancelled <- sc.sc_cancelled + 1
                    | Some _ -> sc.sc_crashed <- sc.sc_crashed + 1)
                | Some i ->
                    if
                      String.sub name (i + 1) (String.length name - i - 1)
                      = "service"
                    then
                      Obs.Metrics.Sketch.observe
                        (scen (String.sub name 0 i)).sc_service d))
        | Obs.Event.Slice_begin { pid } -> Hashtbl.replace slice_open pid ts
        | Obs.Event.Slice_end { pid; _ } -> (
            match Hashtbl.find_opt slice_open pid with
            | None -> ()
            | Some t0 ->
                Hashtbl.remove slice_open pid;
                let prev =
                  Option.value ~default:0 (Hashtbl.find_opt on_cpu pid)
                in
                Hashtbl.replace on_cpu pid (prev + Stdlib.max (ts - t0) 1))
        | _ -> ())
      events;
    (* spans still open at end of trace: cancelled fibers never close
       theirs; count them per scenario *)
    Hashtbl.iter
      (fun span (name, _) ->
        if not (String.contains name '/') && not (Hashtbl.mem fates span) then begin
          let sc = scen name in
          sc.sc_open <- sc.sc_open + 1
        end)
      open_spans;
    let n = ref 0 and s1 = ref 0. and s2 = ref 0. in
    Hashtbl.iter
      (fun _ v ->
        if v > 0 then begin
          incr n;
          let f = float_of_int v in
          s1 := !s1 +. f;
          s2 := !s2 +. (f *. f)
        end)
      on_cpu;
    let fairness =
      if !n = 0 || !s2 <= 0. then 1.
      else !s1 *. !s1 /. (float_of_int !n *. !s2)
    in
    {
      slo_events = Array.length events;
      slo_span =
        (if !last_ts >= !first_ts then !last_ts - !first_ts else 0);
      slo_fairness = fairness;
      slo_scens =
        Hashtbl.fold (fun _ s acc -> s :: acc) scens []
        |> List.sort (fun a b -> compare a.sc_name b.sc_name);
    }

  let goodput t sc =
    if t.slo_span > 0 then
      float_of_int sc.sc_completed *. 1000. /. float_of_int t.slo_span
    else 0.

  type assertion = { a_scen : string option; a_q : float; a_limit : float }

  let parse_assert s =
    let scen, rest =
      match String.index_opt s ':' with
      | Some i ->
          ( Some (String.sub s 0 i),
            String.sub s (i + 1) (String.length s - i - 1) )
      | None -> (None, s)
    in
    if scen = Some "" then
      Error (Printf.sprintf "empty scenario prefix in %S" s)
    else
    match String.index_opt rest '<' with
    | Some i
      when i + 1 < String.length rest
           && rest.[i + 1] = '='
           && (String.sub rest 0 i = "p50"
              || String.sub rest 0 i = "p99"
              || String.sub rest 0 i = "p999") -> (
        let q =
          match String.sub rest 0 i with
          | "p50" -> 0.5
          | "p99" -> 0.99
          | _ -> 0.999
        in
        match
          float_of_string_opt (String.sub rest (i + 2) (String.length rest - i - 2))
        with
        | Some limit -> Ok { a_scen = scen; a_q = q; a_limit = limit }
        | None -> Error (Printf.sprintf "bad assertion limit in %S" s))
    | _ ->
        Error
          (Printf.sprintf
             "bad assertion %S (expected [scenario:]p50|p99|p999<=N)" s)

  let quantile_name q = if q = 0.5 then "p50" else if q = 0.99 then "p99" else "p999"

  let check t a =
    let applicable =
      List.filter
        (fun sc ->
          match a.a_scen with Some n -> sc.sc_name = n | None -> true)
        t.slo_scens
    in
    if applicable = [] then
      Error
        (match a.a_scen with
        | Some n -> Printf.sprintf "assert: no scenario %S in trace" n
        | None -> "assert: no request spans in trace")
    else
      let bad =
        List.filter_map
          (fun sc ->
            let v = Obs.Metrics.Sketch.quantile sc.sc_latency a.a_q in
            if v > a.a_limit then Some (sc.sc_name, v) else None)
          applicable
      in
      match bad with
      | [] -> Ok ()
      | (name, v) :: _ ->
          Error
            (Printf.sprintf "assert failed: %s %s = %.0f > %.0f" name
               (quantile_name a.a_q) v a.a_limit)

  let scen_json t sc =
    let sk s =
      Json.Obj
        [
          ("count", Json.Num (float_of_int (Obs.Metrics.Sketch.count s)));
          ("p50", Json.Num (Obs.Metrics.Sketch.quantile s 0.5));
          ("p99", Json.Num (Obs.Metrics.Sketch.quantile s 0.99));
          ("p999", Json.Num (Obs.Metrics.Sketch.quantile s 0.999));
          ("mean", Json.Num (Obs.Metrics.Sketch.mean s));
          ("max", Json.Num (float_of_int (Obs.Metrics.Sketch.max s)));
        ]
    in
    Json.Obj
      [
        ("scenario", Json.Str sc.sc_name);
        ("requests", Json.Num (float_of_int sc.sc_requests));
        ("completed", Json.Num (float_of_int sc.sc_completed));
        ("timedout", Json.Num (float_of_int sc.sc_timedout));
        ("cancelled", Json.Num (float_of_int sc.sc_cancelled));
        ("crashed", Json.Num (float_of_int sc.sc_crashed));
        ("open", Json.Num (float_of_int sc.sc_open));
        ("goodput_per_ktick", Json.Num (goodput t sc));
        ("latency", sk sc.sc_latency);
        ("service", sk sc.sc_service);
      ]

  let to_json t =
    Json.Obj
      [
        ("events", Json.Num (float_of_int t.slo_events));
        ("span", Json.Num (float_of_int t.slo_span));
        ("fairness", Json.Num t.slo_fairness);
        ("scenarios", Json.Arr (List.map (scen_json t) t.slo_scens));
      ]

  let pp ppf t =
    Format.fprintf ppf "@[<v>%d events over %d vticks, cpu fairness %.3f@,"
      t.slo_events t.slo_span t.slo_fairness;
    if t.slo_scens = [] then Format.fprintf ppf "no request spans@,"
    else begin
      Format.fprintf ppf "%-10s %8s %8s %8s %6s %9s %9s %9s %9s@," "scenario"
        "requests" "ok" "timedout" "open" "p50" "p99" "p999" "req/ktick";
      List.iter
        (fun sc ->
          let q p = Obs.Metrics.Sketch.quantile sc.sc_latency p in
          Format.fprintf ppf "%-10s %8d %8d %8d %6d %9.0f %9.0f %9.0f %9.2f@,"
            sc.sc_name sc.sc_requests sc.sc_completed sc.sc_timedout sc.sc_open
            (q 0.5) (q 0.99) (q 0.999) (goodput t sc))
        t.slo_scens
    end;
    Format.fprintf ppf "@]"
end
