module Counters = Pcont_util.Counters

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let quote s = "\"" ^ escape s ^ "\""

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* One serializer for every producer (sinks, bench rows, reports), so
     output always round-trips through [parse].  Integral floats print
     with no fractional part: the event stream's fields are all ints and
     must re-ingest exactly. *)
  let to_string v =
    let buf = Buffer.create 256 in
    let num f =
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> num f
      | Str s -> Buffer.add_string buf (quote s)
      | Arr vs ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf ',';
              go v)
            vs;
          Buffer.add_char buf ']'
      | Obj kvs ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (quote k);
              Buffer.add_char buf ':';
              go v)
            kvs;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
              incr pos;
              Buffer.contents buf
          | '\\' ->
              incr pos;
              if !pos >= n then fail "truncated escape"
              else begin
                (match s.[!pos] with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'u' ->
                    if !pos + 4 >= n then fail "truncated \\u escape";
                    let hex = String.sub s (!pos + 1) 4 in
                    (match int_of_string_opt ("0x" ^ hex) with
                    | None -> fail "bad \\u escape"
                    | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
                    | Some _ ->
                        (* Preserve the escape textually; the validator only
                           needs well-formedness, not Unicode decoding. *)
                        Buffer.add_string buf ("\\u" ^ hex));
                    pos := !pos + 4
                | c -> fail (Printf.sprintf "bad escape \\%c" c));
                incr pos;
                go ()
              end
          | c when Char.code c < 0x20 -> fail "control character in string"
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "expected a JSON value"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Num f
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or } in object"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ] in array"
            in
            elems []
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input after value";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

module Event = struct
  type t =
    | Spawn of { pid : int; parent : int; kind : string }
    | Spawn_batch of { pid : int; kind : string; nodes : (int * int) array }
        (* one event for a whole regrafted subtree: [nodes] lists the
           rebuilt nodes as (pid, parent) pairs in pre-order (parents
           before children), exactly the order the per-node announcements
           used to be emitted in.  [pid] is the announcing (grafting)
           node. *)
    | Exit of { pid : int }
    | Slice_begin of { pid : int }
    | Slice_end of { pid : int; fuel : int }
    | Park of { pid : int; resource : string }
    | Wake of { pid : int; resource : string }
    | Capture of {
        pid : int;
        label : int;
        root_pid : int;
        control_points : int;
        size : int;
      }
    | Reinstate of { pid : int; label : int; size : int }
    | Send of { pid : int; chan : int }
    | Recv of { pid : int; chan : int }
    | Cancel of { pid : int; scope : int; reason : string; pids : int array }
        (* node [pid] aborted the subtree rooted at [scope] (capture and
           decline to reinstate): [pids] lists every live node discarded,
           pre-order, including [pid] itself when it sat inside the
           scope.  Parked entries among them were released. *)
    | Timeout of { pid : int; deadline : int }
        (* the timer fiber [pid] fired at virtual time [deadline]; a
           Cancel for the timed-out scope follows. *)
    | Crash of { pid : int; fault : string }
        (* a fiber failed.  [fault] is ["inject:crash"], ["inject:wake:R"]
           or ["inject:drop:N"] for scheduler fault injections (these are
           the replayable markers a schedule re-extracts), or the
           exception description when a scope body raised.  [pid] is -1
           for faults that target a resource rather than a fiber. *)
    | Restart of { pid : int; child : int; attempt : int; backoff : int; limit : int }
        (* supervisor [pid] restarted the child whose failed incarnation
           was rooted at [child]; [attempt] counts restarts inside the
           current intensity window (1-based, never exceeds [limit]),
           [backoff] is the virtual-time delay slept before the restart. *)
    | Invalid_controller of { pid : int; label : int }
    | Deadlock of { parked : int }

  let name = function
    | Spawn _ -> "spawn"
    | Spawn_batch _ -> "spawn-batch"
    | Exit _ -> "exit"
    | Slice_begin _ -> "slice-begin"
    | Slice_end _ -> "slice-end"
    | Park _ -> "park"
    | Wake _ -> "wake"
    | Capture _ -> "capture"
    | Reinstate _ -> "reinstate"
    | Send _ -> "send"
    | Recv _ -> "recv"
    | Cancel _ -> "cancel"
    | Timeout _ -> "timeout"
    | Crash _ -> "crash"
    | Restart _ -> "restart"
    | Invalid_controller _ -> "invalid-controller"
    | Deadlock _ -> "deadlock"

  let pid = function
    | Spawn { pid; _ }
    | Spawn_batch { pid; _ }
    | Exit { pid }
    | Slice_begin { pid }
    | Slice_end { pid; _ }
    | Park { pid; _ }
    | Wake { pid; _ }
    | Capture { pid; _ }
    | Reinstate { pid; _ }
    | Send { pid; _ }
    | Recv { pid; _ }
    | Cancel { pid; _ }
    | Timeout { pid; _ }
    | Crash { pid; _ }
    | Restart { pid; _ }
    | Invalid_controller { pid; _ } ->
        pid
    | Deadlock _ -> -1

  let to_human = function
    | Spawn { pid; parent; kind } ->
        Printf.sprintf "spawn   pid=%d parent=%d kind=%s" pid parent kind
    | Spawn_batch { pid; kind; nodes } ->
        Printf.sprintf "spawn*  pid=%d kind=%s nodes=[%s]" pid kind
          (String.concat ";"
             (Array.to_list
                (Array.map (fun (p, par) -> Printf.sprintf "%d<-%d" p par) nodes)))
    | Exit { pid } -> Printf.sprintf "exit    pid=%d" pid
    | Slice_begin { pid } -> Printf.sprintf "run     pid=%d" pid
    | Slice_end { pid; fuel } -> Printf.sprintf "ran     pid=%d fuel=%d" pid fuel
    | Park { pid; resource } -> Printf.sprintf "park    pid=%d on=%s" pid resource
    | Wake { pid; resource } -> Printf.sprintf "wake    pid=%d on=%s" pid resource
    | Capture { pid; label; root_pid; control_points; size } ->
        Printf.sprintf "capture pid=%d root=%d at=%d control-points=%d size=%d" pid
          label root_pid control_points size
    | Reinstate { pid; label; size } ->
        Printf.sprintf "graft   pid=%d root=%d size=%d" pid label size
    | Send { pid; chan } -> Printf.sprintf "send    pid=%d chan=%d" pid chan
    | Recv { pid; chan } -> Printf.sprintf "recv    pid=%d chan=%d" pid chan
    | Cancel { pid; scope; reason; pids } ->
        Printf.sprintf "cancel  pid=%d scope=%d reason=%s pids=[%s]" pid scope
          reason
          (String.concat ";" (Array.to_list (Array.map string_of_int pids)))
    | Timeout { pid; deadline } ->
        Printf.sprintf "timeout pid=%d deadline=%d" pid deadline
    | Crash { pid; fault } -> Printf.sprintf "crash   pid=%d fault=%s" pid fault
    | Restart { pid; child; attempt; backoff; limit } ->
        Printf.sprintf "restart pid=%d child=%d attempt=%d/%d backoff=%d" pid
          child attempt limit backoff
    | Invalid_controller { pid; label } ->
        Printf.sprintf "invalid pid=%d root=%d" pid label
    | Deadlock { parked } -> Printf.sprintf "deadlock parked=%d" parked

  (* Field order is fixed per constructor so identical event streams
     serialize to byte-identical output. *)
  let to_json ~seq ~ts ev =
    let i k v = (k, Json.Num (float_of_int v)) in
    let s k v = (k, Json.Str v) in
    let payload =
      match ev with
      | Spawn { pid; parent; kind } -> [ i "pid" pid; i "parent" parent; s "kind" kind ]
      | Spawn_batch { pid; kind; nodes } ->
          [
            i "pid" pid;
            s "kind" kind;
            ( "nodes",
              Json.Arr
                (Array.to_list
                   (Array.map
                      (fun (p, parent) ->
                        Json.Arr
                          [ Json.Num (float_of_int p); Json.Num (float_of_int parent) ])
                      nodes)) );
          ]
      | Exit { pid } -> [ i "pid" pid ]
      | Slice_begin { pid } -> [ i "pid" pid ]
      | Slice_end { pid; fuel } -> [ i "pid" pid; i "fuel" fuel ]
      | Park { pid; resource } -> [ i "pid" pid; s "resource" resource ]
      | Wake { pid; resource } -> [ i "pid" pid; s "resource" resource ]
      | Capture { pid; label; root_pid; control_points; size } ->
          [
            i "pid" pid;
            i "label" label;
            i "root_pid" root_pid;
            i "control_points" control_points;
            i "size" size;
          ]
      | Reinstate { pid; label; size } ->
          [ i "pid" pid; i "label" label; i "size" size ]
      | Send { pid; chan } -> [ i "pid" pid; i "chan" chan ]
      | Recv { pid; chan } -> [ i "pid" pid; i "chan" chan ]
      | Cancel { pid; scope; reason; pids } ->
          [
            i "pid" pid;
            i "scope" scope;
            s "reason" reason;
            ( "pids",
              Json.Arr
                (Array.to_list
                   (Array.map (fun p -> Json.Num (float_of_int p)) pids)) );
          ]
      | Timeout { pid; deadline } -> [ i "pid" pid; i "deadline" deadline ]
      | Crash { pid; fault } -> [ i "pid" pid; s "fault" fault ]
      | Restart { pid; child; attempt; backoff; limit } ->
          [ i "pid" pid; i "child" child; i "attempt" attempt; i "backoff" backoff; i "limit" limit ]
      | Invalid_controller { pid; label } -> [ i "pid" pid; i "label" label ]
      | Deadlock { parked } -> [ i "parked" parked ]
    in
    Json.Obj (i "seq" seq :: i "ts" ts :: s "ev" (name ev) :: payload)
end

(* ------------------------------------------------------------------ *)
(* Metrics: counters + fixed-bucket histograms                         *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type hist = {
    bounds : int array;  (* strictly increasing inclusive upper bounds *)
    counts : int array;  (* length bounds + 1; the last is the overflow *)
    mutable n : int;
    mutable sum : int;
    mutable max : int;
  }

  (* 1, 2, 4, ..., 2^20: wide enough for fuel-per-quantum, queue depths
     and capture sizes while keeping observation a short scan. *)
  let default_bounds = Array.init 21 (fun i -> 1 lsl i)

  type t = { counters : Counters.t; hists : (string, hist) Hashtbl.t }

  let create ?counters () =
    {
      counters = (match counters with Some c -> c | None -> Counters.create ());
      hists = Hashtbl.create 16;
    }

  let counters t = t.counters

  let incr t name = Counters.incr t.counters name

  let add t name n = Counters.add t.counters name n

  let hist_of t name =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h =
          {
            bounds = default_bounds;
            counts = Array.make (Array.length default_bounds + 1) 0;
            n = 0;
            sum = 0;
            max = 0;
          }
        in
        Hashtbl.add t.hists name h;
        h

  let observe t name v =
    let v = if v < 0 then 0 else v in
    let h = hist_of t name in
    let nb = Array.length h.bounds in
    let rec bucket i = if i >= nb || v <= h.bounds.(i) then i else bucket (i + 1) in
    let i = bucket 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum + v;
    if v > h.max then h.max <- v

  let find t name = Hashtbl.find_opt t.hists name

  let hists t =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let hist_count h = h.n

  let hist_sum h = h.sum

  let hist_max h = h.max

  let hist_mean h = if h.n = 0 then 0. else float_of_int h.sum /. float_of_int h.n

  let hist_buckets h =
    let nb = Array.length h.bounds in
    let acc = ref [] in
    for i = nb downto 0 do
      if h.counts.(i) > 0 then
        let label =
          if i = nb then Printf.sprintf ">%d" h.bounds.(nb - 1)
          else Printf.sprintf "<=%d" h.bounds.(i)
        in
        acc := (label, h.counts.(i)) :: !acc
    done;
    !acc

  let pp ppf t =
    Format.fprintf ppf "@[<v>%a" Counters.pp t.counters;
    List.iter
      (fun (name, h) ->
        if h.n > 0 then begin
          Format.fprintf ppf "@,%s: n=%d sum=%d max=%d mean=%.1f" name h.n h.sum
            h.max (hist_mean h);
          List.iter
            (fun (label, c) -> Format.fprintf ppf "@,  %-10s %d" label c)
            (hist_buckets h)
        end)
      (hists t);
    Format.fprintf ppf "@]"
end

(* ------------------------------------------------------------------ *)
(* Handles                                                             *)
(* ------------------------------------------------------------------ *)

type sink = {
  sink_event : seq:int -> ts:int -> Event.t -> unit;
  sink_close : unit -> unit;
}

type t = {
  mutable oseq : int;
  mutable oclock : int;
  mutable sinks : sink list;
  omx : Metrics.t;
}

let create ?metrics () =
  {
    oseq = 0;
    oclock = 0;
    sinks = [];
    omx = (match metrics with Some m -> m | None -> Metrics.create ());
  }

let metrics t = t.omx

let attach t s = t.sinks <- t.sinks @ [ s ]

let has_sink t = t.sinks <> []

let emit t ev =
  let seq = t.oseq in
  t.oseq <- seq + 1;
  match t.sinks with
  | [] -> ()
  | sinks -> List.iter (fun s -> s.sink_event ~seq ~ts:t.oclock ev) sinks

let advance t d = if d > 0 then t.oclock <- t.oclock + d

let now t = t.oclock

let seq t = t.oseq

let observe t name v = Metrics.observe t.omx name v

let incr t name = Metrics.incr t.omx name

let close t =
  let sinks = t.sinks in
  t.sinks <- [];
  List.iter (fun s -> s.sink_close ()) sinks

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

module Sink = struct
  let of_channel oc s = output_string oc s

  let human ?(prefix = "") write =
    {
      sink_event =
        (fun ~seq:_ ~ts ev ->
          write (Printf.sprintf "%s[%6d] %s\n" prefix ts (Event.to_human ev)));
      sink_close = (fun () -> ());
    }

  let jsonl write =
    {
      sink_event =
        (fun ~seq ~ts ev -> write (Json.to_string (Event.to_json ~seq ~ts ev) ^ "\n"));
      sink_close = (fun () -> ());
    }

  (* Chrome trace-event format (JSON array flavour).  One OS-level
     "process" (pid 1); each scheduler node is a thread/track (tid =
     node id) named on first sight via a thread_name metadata record.
     Run slices are B/E duration events; everything else an instant. *)
  let chrome write =
    let first = ref true in
    let item j =
      if !first then begin
        first := false;
        write "[\n  "
      end
      else write ",\n  ";
      write (Json.to_string j)
    in
    let num v = Json.Num (float_of_int v) in
    let named = Hashtbl.create 16 in
    let ensure_name pid label =
      if not (Hashtbl.mem named pid) then begin
        Hashtbl.add named pid ();
        item
          (Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", num 1);
               ("tid", num pid);
               ("args", Json.Obj [ ("name", Json.Str label) ]);
             ])
      end
    in
    let record ~ph ~ts pid name args =
      Json.Obj
        (("name", Json.Str name)
         :: ("cat", Json.Str "pcont")
         :: ("ph", Json.Str ph)
         :: (if ph = "i" then [ ("s", Json.Str "t") ] else [])
        @ [ ("ts", num ts); ("pid", num 1); ("tid", num pid) ]
        @ (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ]))
    in
    let instant ~ts pid name args =
      ensure_name pid (Printf.sprintf "p%d" pid);
      item (record ~ph:"i" ~ts pid name args)
    in
    {
      sink_event =
        (fun ~seq:_ ~ts ev ->
          match ev with
          | Event.Spawn { pid; parent; kind } ->
              ensure_name pid (Printf.sprintf "%s %d" kind pid);
              instant ~ts pid "spawn"
                [ ("parent", num parent); ("kind", Json.Str kind) ]
          | Event.Spawn_batch { pid; kind; nodes } ->
              (* name every rebuilt node's track, then one instant on the
                 announcing node summarising the batch *)
              Array.iter
                (fun (p, _) -> ensure_name p (Printf.sprintf "%s %d" kind p))
                nodes;
              instant ~ts pid "spawn-batch"
                [ ("kind", Json.Str kind); ("count", num (Array.length nodes)) ]
          | Event.Exit { pid } -> instant ~ts pid "exit" []
          | Event.Slice_begin { pid } ->
              ensure_name pid (Printf.sprintf "p%d" pid);
              item (record ~ph:"B" ~ts pid "run" [])
          | Event.Slice_end { pid; fuel } ->
              item (record ~ph:"E" ~ts pid "run" [ ("fuel", num fuel) ])
          | Event.Park { pid; resource } ->
              instant ~ts pid "park" [ ("resource", Json.Str resource) ]
          | Event.Wake { pid; resource } ->
              instant ~ts pid "wake" [ ("resource", Json.Str resource) ]
          | Event.Capture { pid; label; root_pid; control_points; size } ->
              instant ~ts pid "capture"
                [
                  ("label", num label);
                  ("root_pid", num root_pid);
                  ("control_points", num control_points);
                  ("size", num size);
                ]
          | Event.Reinstate { pid; label; size } ->
              instant ~ts pid "reinstate" [ ("label", num label); ("size", num size) ]
          | Event.Send { pid; chan } -> instant ~ts pid "send" [ ("chan", num chan) ]
          | Event.Recv { pid; chan } -> instant ~ts pid "recv" [ ("chan", num chan) ]
          | Event.Cancel { pid; scope; reason; pids } ->
              instant ~ts pid "cancel"
                [
                  ("scope", num scope);
                  ("reason", Json.Str reason);
                  ("count", num (Array.length pids));
                ]
          | Event.Timeout { pid; deadline } ->
              instant ~ts pid "timeout" [ ("deadline", num deadline) ]
          | Event.Crash { pid; fault } ->
              instant ~ts (max pid 0) "crash" [ ("fault", Json.Str fault) ]
          | Event.Restart { pid; child; attempt; backoff; limit } ->
              instant ~ts pid "restart"
                [
                  ("child", num child);
                  ("attempt", num attempt);
                  ("backoff", num backoff);
                  ("limit", num limit);
                ]
          | Event.Invalid_controller { pid; label } ->
              instant ~ts pid "invalid-controller" [ ("label", num label) ]
          | Event.Deadlock { parked } ->
              instant ~ts 0 "deadlock" [ ("parked", num parked) ]);
      sink_close = (fun () -> if !first then write "[]\n" else write "\n]\n");
    }

  let memory f = { sink_event = (fun ~seq ~ts ev -> f (seq, ts, ev)); sink_close = ignore }
end

(* ------------------------------------------------------------------ *)
(* Per-process summary                                                 *)
(* ------------------------------------------------------------------ *)

module Summary = struct
  type row = {
    mutable r_kind : string;
    mutable r_slices : int;
    mutable r_fuel : int;
    mutable r_parks : int;
    mutable r_wakes : int;
    mutable r_captures : int;
    mutable r_reinstates : int;
    mutable r_sends : int;
    mutable r_recvs : int;
    mutable r_exits : int;
    mutable r_fate : string;
        (* "" for a normal exit; "cancelled", "crashed" or "restarted"
           otherwise (restarted > crashed > cancelled when several apply) *)
  }

  type t = {
    s_rows : (int, row) Hashtbl.t;
    mutable s_deadlock : int option;  (* parked count of the last deadlock *)
    mutable s_cancelled_parked : int;
        (* fibers that were parked at the moment a cancel discarded them *)
  }

  let create () : t =
    { s_rows = Hashtbl.create 16; s_deadlock = None; s_cancelled_parked = 0 }

  let row t pid =
    match Hashtbl.find_opt t.s_rows pid with
    | Some r -> r
    | None ->
        let r =
          {
            r_kind = "?";
            r_slices = 0;
            r_fuel = 0;
            r_parks = 0;
            r_wakes = 0;
            r_captures = 0;
            r_reinstates = 0;
            r_sends = 0;
            r_recvs = 0;
            r_exits = 0;
            r_fate = "";
          }
        in
        Hashtbl.add t.s_rows pid r;
        r

  let sink t =
    {
      sink_event =
        (fun ~seq:_ ~ts:_ ev ->
          match ev with
          | Event.Spawn { pid; kind; _ } ->
              let r = row t pid in
              r.r_kind <- kind
          | Event.Spawn_batch { kind; nodes; _ } ->
              Array.iter
                (fun (p, _) ->
                  let r = row t p in
                  r.r_kind <- kind)
                nodes
          | Event.Exit { pid } ->
              let r = row t pid in
              r.r_exits <- r.r_exits + 1
          | Event.Slice_end { pid; fuel } ->
              let r = row t pid in
              r.r_slices <- r.r_slices + 1;
              r.r_fuel <- r.r_fuel + fuel
          | Event.Park { pid; _ } ->
              let r = row t pid in
              r.r_parks <- r.r_parks + 1
          | Event.Wake { pid; _ } ->
              let r = row t pid in
              r.r_wakes <- r.r_wakes + 1
          | Event.Capture { pid; _ } ->
              let r = row t pid in
              r.r_captures <- r.r_captures + 1
          | Event.Reinstate { pid; _ } ->
              let r = row t pid in
              r.r_reinstates <- r.r_reinstates + 1
          | Event.Send { pid; _ } ->
              let r = row t pid in
              r.r_sends <- r.r_sends + 1
          | Event.Recv { pid; _ } ->
              let r = row t pid in
              r.r_recvs <- r.r_recvs + 1
          | Event.Cancel { pids; _ } ->
              Array.iter
                (fun p ->
                  let r = row t p in
                  if r.r_parks > r.r_wakes then
                    t.s_cancelled_parked <- t.s_cancelled_parked + 1;
                  if r.r_fate = "" then r.r_fate <- "cancelled")
                pids
          | Event.Crash { pid; _ } ->
              if pid >= 0 then begin
                let r = row t pid in
                if r.r_fate <> "restarted" then r.r_fate <- "crashed"
              end
          | Event.Restart { child; _ } ->
              let r = row t child in
              r.r_fate <- "restarted"
          | Event.Deadlock { parked } -> t.s_deadlock <- Some parked
          | Event.Slice_begin _ | Event.Timeout _ | Event.Invalid_controller _ ->
              ());
      sink_close = (fun () -> ());
    }

  let rows t =
    Hashtbl.fold (fun pid r acc -> (pid, r) :: acc) t.s_rows []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let deadlock t = t.s_deadlock
  let cancelled_parked t = t.s_cancelled_parked

  let pp ppf t =
    Format.fprintf ppf "@[<v>%8s %-10s %8s %10s %7s %7s %9s %7s %7s %7s %9s" "pid"
      "kind" "slices" "fuel" "parks" "wakes" "captures" "grafts" "sends" "recvs"
      "exits";
    List.iter
      (fun (pid, r) ->
        (* the exits cell distinguishes cancelled/crashed/restarted fates
           from normal exit counts *)
        let exits =
          if r.r_fate = "" then string_of_int r.r_exits else r.r_fate
        in
        Format.fprintf ppf "@,%8d %-10s %8d %10d %7d %7d %9d %7d %7d %7d %9s" pid
          r.r_kind r.r_slices r.r_fuel r.r_parks r.r_wakes r.r_captures
          r.r_reinstates r.r_sends r.r_recvs exits)
      (rows t);
    (match t.s_deadlock with
    | None -> ()
    | Some parked ->
        Format.fprintf ppf "@,deadlock: %d process(es) left parked" parked;
        if t.s_cancelled_parked > 0 then
          Format.fprintf ppf " (+%d cancelled while parked)"
            t.s_cancelled_parked);
    Format.fprintf ppf "@]"
end
