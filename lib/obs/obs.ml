module Counters = Pcont_util.Counters

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let quote s = "\"" ^ escape s ^ "\""

  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* One serializer for every producer (sinks, bench rows, reports), so
     output always round-trips through [parse].  Integral floats print
     with no fractional part: the event stream's fields are all ints and
     must re-ingest exactly. *)
  let to_string v =
    let buf = Buffer.create 256 in
    let num f =
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> num f
      | Str s -> Buffer.add_string buf (quote s)
      | Arr vs ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf ',';
              go v)
            vs;
          Buffer.add_char buf ']'
      | Obj kvs ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (quote k);
              Buffer.add_char buf ':';
              go v)
            kvs;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
              incr pos;
              Buffer.contents buf
          | '\\' ->
              incr pos;
              if !pos >= n then fail "truncated escape"
              else begin
                (match s.[!pos] with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'u' ->
                    if !pos + 4 >= n then fail "truncated \\u escape";
                    let hex = String.sub s (!pos + 1) 4 in
                    (match int_of_string_opt ("0x" ^ hex) with
                    | None -> fail "bad \\u escape"
                    | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
                    | Some _ ->
                        (* Preserve the escape textually; the validator only
                           needs well-formedness, not Unicode decoding. *)
                        Buffer.add_string buf ("\\u" ^ hex));
                    pos := !pos + 4
                | c -> fail (Printf.sprintf "bad escape \\%c" c));
                incr pos;
                go ()
              end
          | c when Char.code c < 0x20 -> fail "control character in string"
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "expected a JSON value"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> Num f
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or } in object"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ] in array"
            in
            elems []
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing input after value";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

module Event = struct
  type t =
    | Spawn of { pid : int; parent : int; kind : string }
    | Spawn_batch of { pid : int; kind : string; nodes : (int * int) array }
        (* one event for a whole regrafted subtree: [nodes] lists the
           rebuilt nodes as (pid, parent) pairs in pre-order (parents
           before children), exactly the order the per-node announcements
           used to be emitted in.  [pid] is the announcing (grafting)
           node. *)
    | Exit of { pid : int }
    | Slice_begin of { pid : int }
    | Slice_end of { pid : int; fuel : int }
    | Park of { pid : int; resource : string }
    | Wake of { pid : int; resource : string }
    | Capture of {
        pid : int;
        label : int;
        root_pid : int;
        control_points : int;
        size : int;
      }
    | Reinstate of { pid : int; label : int; size : int }
    | Send of { pid : int; chan : int }
    | Recv of { pid : int; chan : int }
    | Cancel of { pid : int; scope : int; reason : string; pids : int array }
        (* node [pid] aborted the subtree rooted at [scope] (capture and
           decline to reinstate): [pids] lists every live node discarded,
           pre-order, including [pid] itself when it sat inside the
           scope.  Parked entries among them were released. *)
    | Timeout of { pid : int; deadline : int }
        (* the timer fiber [pid] fired at virtual time [deadline]; a
           Cancel for the timed-out scope follows. *)
    | Crash of { pid : int; fault : string }
        (* a fiber failed.  [fault] is ["inject:crash"], ["inject:wake:R"]
           or ["inject:drop:N"] for scheduler fault injections (these are
           the replayable markers a schedule re-extracts), or the
           exception description when a scope body raised.  [pid] is -1
           for faults that target a resource rather than a fiber. *)
    | Restart of { pid : int; child : int; attempt : int; backoff : int; limit : int }
        (* supervisor [pid] restarted the child whose failed incarnation
           was rooted at [child]; [attempt] counts restarts inside the
           current intensity window (1-based, never exceeds [limit]),
           [backoff] is the virtual-time delay slept before the restart. *)
    | Invalid_controller of { pid : int; label : int }
    | Deadlock of { parked : int }
    | Span_begin of { pid : int; span : int; parent : int; name : string }
        (* fiber [pid] opened causal span [span] (a per-handle id, dense
           in allocation order so traces stay byte-deterministic per
           seed); [parent] is the enclosing span id or -1.  The span
           context propagates through spawn, graft and channel
           send/recv, so one request's spans cross fiber boundaries. *)
    | Span_end of { pid : int; span : int }

  let name = function
    | Spawn _ -> "spawn"
    | Spawn_batch _ -> "spawn-batch"
    | Exit _ -> "exit"
    | Slice_begin _ -> "slice-begin"
    | Slice_end _ -> "slice-end"
    | Park _ -> "park"
    | Wake _ -> "wake"
    | Capture _ -> "capture"
    | Reinstate _ -> "reinstate"
    | Send _ -> "send"
    | Recv _ -> "recv"
    | Cancel _ -> "cancel"
    | Timeout _ -> "timeout"
    | Crash _ -> "crash"
    | Restart _ -> "restart"
    | Invalid_controller _ -> "invalid-controller"
    | Deadlock _ -> "deadlock"
    | Span_begin _ -> "span-begin"
    | Span_end _ -> "span-end"

  let pid = function
    | Spawn { pid; _ }
    | Spawn_batch { pid; _ }
    | Exit { pid }
    | Slice_begin { pid }
    | Slice_end { pid; _ }
    | Park { pid; _ }
    | Wake { pid; _ }
    | Capture { pid; _ }
    | Reinstate { pid; _ }
    | Send { pid; _ }
    | Recv { pid; _ }
    | Cancel { pid; _ }
    | Timeout { pid; _ }
    | Crash { pid; _ }
    | Restart { pid; _ }
    | Invalid_controller { pid; _ }
    | Span_begin { pid; _ }
    | Span_end { pid; _ } ->
        pid
    | Deadlock _ -> -1

  let to_human = function
    | Spawn { pid; parent; kind } ->
        Printf.sprintf "spawn   pid=%d parent=%d kind=%s" pid parent kind
    | Spawn_batch { pid; kind; nodes } ->
        Printf.sprintf "spawn*  pid=%d kind=%s nodes=[%s]" pid kind
          (String.concat ";"
             (Array.to_list
                (Array.map (fun (p, par) -> Printf.sprintf "%d<-%d" p par) nodes)))
    | Exit { pid } -> Printf.sprintf "exit    pid=%d" pid
    | Slice_begin { pid } -> Printf.sprintf "run     pid=%d" pid
    | Slice_end { pid; fuel } -> Printf.sprintf "ran     pid=%d fuel=%d" pid fuel
    | Park { pid; resource } -> Printf.sprintf "park    pid=%d on=%s" pid resource
    | Wake { pid; resource } -> Printf.sprintf "wake    pid=%d on=%s" pid resource
    | Capture { pid; label; root_pid; control_points; size } ->
        Printf.sprintf "capture pid=%d root=%d at=%d control-points=%d size=%d" pid
          label root_pid control_points size
    | Reinstate { pid; label; size } ->
        Printf.sprintf "graft   pid=%d root=%d size=%d" pid label size
    | Send { pid; chan } -> Printf.sprintf "send    pid=%d chan=%d" pid chan
    | Recv { pid; chan } -> Printf.sprintf "recv    pid=%d chan=%d" pid chan
    | Cancel { pid; scope; reason; pids } ->
        Printf.sprintf "cancel  pid=%d scope=%d reason=%s pids=[%s]" pid scope
          reason
          (String.concat ";" (Array.to_list (Array.map string_of_int pids)))
    | Timeout { pid; deadline } ->
        Printf.sprintf "timeout pid=%d deadline=%d" pid deadline
    | Crash { pid; fault } -> Printf.sprintf "crash   pid=%d fault=%s" pid fault
    | Restart { pid; child; attempt; backoff; limit } ->
        Printf.sprintf "restart pid=%d child=%d attempt=%d/%d backoff=%d" pid
          child attempt limit backoff
    | Invalid_controller { pid; label } ->
        Printf.sprintf "invalid pid=%d root=%d" pid label
    | Deadlock { parked } -> Printf.sprintf "deadlock parked=%d" parked
    | Span_begin { pid; span; parent; name } ->
        Printf.sprintf "span+   pid=%d id=%d parent=%d name=%s" pid span parent name
    | Span_end { pid; span } -> Printf.sprintf "span-   pid=%d id=%d" pid span

  (* Field order is fixed per constructor so identical event streams
     serialize to byte-identical output. *)
  let to_json ~seq ~ts ev =
    let i k v = (k, Json.Num (float_of_int v)) in
    let s k v = (k, Json.Str v) in
    let payload =
      match ev with
      | Spawn { pid; parent; kind } -> [ i "pid" pid; i "parent" parent; s "kind" kind ]
      | Spawn_batch { pid; kind; nodes } ->
          [
            i "pid" pid;
            s "kind" kind;
            ( "nodes",
              Json.Arr
                (Array.to_list
                   (Array.map
                      (fun (p, parent) ->
                        Json.Arr
                          [ Json.Num (float_of_int p); Json.Num (float_of_int parent) ])
                      nodes)) );
          ]
      | Exit { pid } -> [ i "pid" pid ]
      | Slice_begin { pid } -> [ i "pid" pid ]
      | Slice_end { pid; fuel } -> [ i "pid" pid; i "fuel" fuel ]
      | Park { pid; resource } -> [ i "pid" pid; s "resource" resource ]
      | Wake { pid; resource } -> [ i "pid" pid; s "resource" resource ]
      | Capture { pid; label; root_pid; control_points; size } ->
          [
            i "pid" pid;
            i "label" label;
            i "root_pid" root_pid;
            i "control_points" control_points;
            i "size" size;
          ]
      | Reinstate { pid; label; size } ->
          [ i "pid" pid; i "label" label; i "size" size ]
      | Send { pid; chan } -> [ i "pid" pid; i "chan" chan ]
      | Recv { pid; chan } -> [ i "pid" pid; i "chan" chan ]
      | Cancel { pid; scope; reason; pids } ->
          [
            i "pid" pid;
            i "scope" scope;
            s "reason" reason;
            ( "pids",
              Json.Arr
                (Array.to_list
                   (Array.map (fun p -> Json.Num (float_of_int p)) pids)) );
          ]
      | Timeout { pid; deadline } -> [ i "pid" pid; i "deadline" deadline ]
      | Crash { pid; fault } -> [ i "pid" pid; s "fault" fault ]
      | Restart { pid; child; attempt; backoff; limit } ->
          [ i "pid" pid; i "child" child; i "attempt" attempt; i "backoff" backoff; i "limit" limit ]
      | Invalid_controller { pid; label } -> [ i "pid" pid; i "label" label ]
      | Deadlock { parked } -> [ i "parked" parked ]
      | Span_begin { pid; span; parent; name } ->
          [ i "pid" pid; i "span" span; i "parent" parent; s "name" name ]
      | Span_end { pid; span } -> [ i "pid" pid; i "span" span ]
    in
    Json.Obj (i "seq" seq :: i "ts" ts :: s "ev" (name ev) :: payload)
end

(* ------------------------------------------------------------------ *)
(* Metrics: counters + fixed-bucket histograms                         *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type hist = {
    bounds : int array;  (* strictly increasing inclusive upper bounds *)
    counts : int array;  (* length bounds + 1; the last is the overflow *)
    mutable n : int;
    mutable sum : int;
    mutable max : int;
  }

  (* 1, 2, 4, ..., 2^20: wide enough for fuel-per-quantum, queue depths
     and capture sizes while keeping observation a short scan. *)
  let default_bounds = Array.init 21 (fun i -> 1 lsl i)

  (* DDSketch-style mergeable quantile sketch.  Bucket [i] (i >= 0) holds
     every observation v with gamma^(i-1) < v <= gamma^i, where
     gamma = (1+alpha)/(1-alpha); zeros are counted exactly.  Reporting
     the bucket midpoint 2*gamma^i/(gamma+1) makes every quantile
     estimate within relative error alpha of some true observation:
     for v in the bucket, |est - v| / v <= alpha (the DDSketch bound).
     Merging two sketches with the same alpha is bucket-wise addition,
     which loses nothing — the merge of the sketches equals the sketch
     of the merged stream. *)
  module Sketch = struct
    type t = {
      sk_alpha : float;
      sk_gamma : float;
      sk_log_gamma : float;  (* cached 1/ln gamma *)
      (* bucket counts indexed directly by bucket number — observation is
         an array increment, not a hashtable probe (this runs once per
         scheduler slice); grown by doubling when a large value lands
         past the end.  ~1150 buckets cover [1, 2^62] at alpha = 0.01. *)
      mutable sk_buckets : int array;
      mutable sk_zero : int;  (* exact count of zero observations *)
      mutable sk_n : int;
      mutable sk_sum : int;
      mutable sk_max : int;
    }

    let create ?(alpha = 0.01) () =
      if alpha <= 0. || alpha >= 1. then
        invalid_arg "Sketch.create: alpha must be in (0, 1)";
      let gamma = (1. +. alpha) /. (1. -. alpha) in
      {
        sk_alpha = alpha;
        sk_gamma = gamma;
        sk_log_gamma = 1. /. log gamma;
        sk_buckets = Array.make 64 0;
        sk_zero = 0;
        sk_n = 0;
        sk_sum = 0;
        sk_max = 0;
      }

    let alpha sk = sk.sk_alpha

    let count sk = sk.sk_n

    let sum sk = sk.sk_sum

    let max sk = sk.sk_max

    let mean sk =
      if sk.sk_n = 0 then 0. else float_of_int sk.sk_sum /. float_of_int sk.sk_n

    (* ceil(log_gamma v), clamped so v=1 lands in bucket 0.  The float
       log is exact enough: an off-by-one bucket is still within the
       advertised bound because adjacent buckets overlap at gamma^i. *)
    let bucket_of sk v = int_of_float (Float.ceil (log (float_of_int v) *. sk.sk_log_gamma))

    let grow sk i =
      let rec cap m = if i < m then m else cap (2 * m) in
      let b = Array.make (cap (2 * Array.length sk.sk_buckets)) 0 in
      Array.blit sk.sk_buckets 0 b 0 (Array.length sk.sk_buckets);
      sk.sk_buckets <- b

    let observe sk v =
      let v = if v < 0 then 0 else v in
      sk.sk_n <- sk.sk_n + 1;
      sk.sk_sum <- sk.sk_sum + v;
      if v > sk.sk_max then sk.sk_max <- v;
      if v = 0 then sk.sk_zero <- sk.sk_zero + 1
      else begin
        let i = bucket_of sk v in
        if i >= Array.length sk.sk_buckets then grow sk i;
        sk.sk_buckets.(i) <- sk.sk_buckets.(i) + 1
      end

    (* Value at rank floor(q * (n-1)), walking buckets in index order —
       deterministic for a given stream, O(buckets log buckets). *)
    let quantile sk q =
      if sk.sk_n = 0 then 0.
      else begin
        let q = if q < 0. then 0. else if q > 1. then 1. else q in
        let rank = int_of_float (q *. float_of_int (sk.sk_n - 1)) in
        if rank < sk.sk_zero then 0.
        else begin
          let nb = Array.length sk.sk_buckets in
          let rec walk acc i =
            if i >= nb then float_of_int sk.sk_max
            else
              let acc = acc + sk.sk_buckets.(i) in
              if rank < acc then
                2. *. (sk.sk_gamma ** float_of_int i) /. (sk.sk_gamma +. 1.)
              else walk acc (i + 1)
          in
          walk sk.sk_zero 0
        end
      end

    let merge dst src =
      if dst.sk_alpha <> src.sk_alpha then
        invalid_arg "Sketch.merge: sketches have different error bounds";
      let ns = Array.length src.sk_buckets in
      if ns > Array.length dst.sk_buckets then grow dst (ns - 1);
      for i = 0 to ns - 1 do
        dst.sk_buckets.(i) <- dst.sk_buckets.(i) + src.sk_buckets.(i)
      done;
      dst.sk_zero <- dst.sk_zero + src.sk_zero;
      dst.sk_n <- dst.sk_n + src.sk_n;
      dst.sk_sum <- dst.sk_sum + src.sk_sum;
      if src.sk_max > dst.sk_max then dst.sk_max <- src.sk_max
  end

  type t = {
    counters : Counters.t;
    hists : (string, hist) Hashtbl.t;
    sketches : (string, Sketch.t) Hashtbl.t;
  }

  let create ?counters () =
    {
      counters = (match counters with Some c -> c | None -> Counters.create ());
      hists = Hashtbl.create 16;
      sketches = Hashtbl.create 16;
    }

  let counters t = t.counters

  let incr t name = Counters.incr t.counters name

  let add t name n = Counters.add t.counters name n

  let hist_of t name =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h =
          {
            bounds = default_bounds;
            counts = Array.make (Array.length default_bounds + 1) 0;
            n = 0;
            sum = 0;
            max = 0;
          }
        in
        Hashtbl.add t.hists name h;
        h

  let sketch_of t name =
    match Hashtbl.find_opt t.sketches name with
    | Some sk -> sk
    | None ->
        let sk = Sketch.create () in
        Hashtbl.add t.sketches name sk;
        sk

  (* A pre-resolved handle on one named distribution: scheduler hot
     paths (one observation per slice) pay the string-keyed lookups once
     per run instead of once per observation. *)
  type series = { se_hist : hist; se_sketch : Sketch.t }

  let series t name = { se_hist = hist_of t name; se_sketch = sketch_of t name }

  (* Every observation feeds both views: the power-of-two histogram
     (exact bucket counts, cheap to print) and the quantile sketch
     (p50/p99/p999 within the relative-error bound, mergeable). *)
  let observe_series se v =
    let v = if v < 0 then 0 else v in
    let h = se.se_hist in
    let nb = Array.length h.bounds in
    let rec bucket i = if i >= nb || v <= h.bounds.(i) then i else bucket (i + 1) in
    let i = bucket 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum + v;
    if v > h.max then h.max <- v;
    Sketch.observe se.se_sketch v

  let observe t name v = observe_series (series t name) v

  let find t name = Hashtbl.find_opt t.hists name

  let find_sketch t name = Hashtbl.find_opt t.sketches name

  let sketches t =
    Hashtbl.fold (fun name sk acc -> (name, sk) :: acc) t.sketches []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let quantile t name q =
    match find_sketch t name with None -> 0. | Some sk -> Sketch.quantile sk q

  let hists t =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let hist_count h = h.n

  let hist_sum h = h.sum

  let hist_max h = h.max

  let hist_mean h = if h.n = 0 then 0. else float_of_int h.sum /. float_of_int h.n

  let hist_buckets h =
    let nb = Array.length h.bounds in
    let acc = ref [] in
    for i = nb downto 0 do
      if h.counts.(i) > 0 then
        let label =
          if i = nb then Printf.sprintf ">%d" h.bounds.(nb - 1)
          else Printf.sprintf "<=%d" h.bounds.(i)
        in
        acc := (label, h.counts.(i)) :: !acc
    done;
    !acc

  (* Fold [src] into [dst]: counters add, histograms add bucket-wise
     (same bounds required), sketches merge bucket-wise.  Groundwork for
     per-domain metrics buffers: each domain observes locally and the
     collector merges. *)
  let merge dst src =
    List.iter (fun (name, v) -> Counters.add dst.counters name v)
      (Counters.to_list src.counters);
    Hashtbl.iter
      (fun name (h : hist) ->
        let d = hist_of dst name in
        if d.bounds <> h.bounds then
          invalid_arg "Metrics.merge: histograms have different bounds";
        Array.iteri (fun i c -> d.counts.(i) <- d.counts.(i) + c) h.counts;
        d.n <- d.n + h.n;
        d.sum <- d.sum + h.sum;
        if h.max > d.max then d.max <- h.max)
      src.hists;
    Hashtbl.iter
      (fun name sk -> Sketch.merge (sketch_of dst name) sk)
      src.sketches

  let pp ppf t =
    Format.fprintf ppf "@[<v>%a" Counters.pp t.counters;
    List.iter
      (fun (name, h) ->
        if h.n > 0 then begin
          Format.fprintf ppf "@,%s: n=%d sum=%d max=%d mean=%.1f" name h.n h.sum
            h.max (hist_mean h);
          List.iter
            (fun (label, c) -> Format.fprintf ppf "@,  %-10s %d" label c)
            (hist_buckets h)
        end)
      (hists t);
    Format.fprintf ppf "@]"
end

(* ------------------------------------------------------------------ *)
(* Handles                                                             *)
(* ------------------------------------------------------------------ *)

type sink = {
  sink_event : seq:int -> ts:int -> Event.t -> unit;
  sink_close : unit -> unit;
}

type t = {
  mutable oseq : int;
  mutable oclock : int;
  mutable sinks : sink list;
  omx : Metrics.t;
  mutable onext_span : int;  (* next span id, dense in allocation order *)
  ospans : (int, int) Hashtbl.t;  (* open span id -> begin timestamp *)
}

let create ?metrics () =
  {
    oseq = 0;
    oclock = 0;
    sinks = [];
    omx = (match metrics with Some m -> m | None -> Metrics.create ());
    onext_span = 0;
    ospans = Hashtbl.create 8;
  }

let metrics t = t.omx

let attach t s = t.sinks <- t.sinks @ [ s ]

let has_sink t = t.sinks <> []

(* Deliver to every sink even if an earlier one raises; collect the
   raisers (allocation-free when nothing fails — the common case). *)
let rec sink_failures ~seq ~ts ev = function
  | [] -> []
  | s :: rest -> (
      match s.sink_event ~seq ~ts ev with
      | () -> sink_failures ~seq ~ts ev rest
      | exception exn -> (s, exn) :: sink_failures ~seq ~ts ev rest)

(* A sink whose [sink_event] raises must not take the handle down with
   it: the event stream is shared state (the seq counter is already
   advanced, later-attached sinks still expect delivery).  The faulty
   sink is detached and the failure is recorded in-stream as a Crash
   warning event with pid -1, so the surviving sinks' traces say why
   one consumer went quiet. *)
let rec emit t ev =
  let seq = t.oseq in
  t.oseq <- seq + 1;
  match t.sinks with
  | [] -> ()
  | [ s ] -> (
      (* single-sink fast path: the common always-on configuration (one
         ring) pays one closure call, no failure-list allocation *)
      try s.sink_event ~seq ~ts:t.oclock ev
      with exn ->
        t.sinks <- List.filter (fun s' -> s' != s) t.sinks;
        emit t
          (Event.Crash { pid = -1; fault = "sink: " ^ Printexc.to_string exn }))
  | sinks -> (
      match sink_failures ~seq ~ts:t.oclock ev sinks with
      | [] -> ()
      | failures ->
          t.sinks <-
            List.filter
              (fun s -> not (List.exists (fun (f, _) -> f == s) failures))
              t.sinks;
          List.iter
            (fun (_, exn) ->
              emit t
                (Event.Crash
                   { pid = -1; fault = "sink: " ^ Printexc.to_string exn }))
            (List.rev failures))

let advance t d = if d > 0 then t.oclock <- t.oclock + d

let now t = t.oclock

let seq t = t.oseq

let observe t name v = Metrics.observe t.omx name v

let incr t name = Metrics.incr t.omx name

let close t =
  let sinks = t.sinks in
  t.sinks <- [];
  List.iter (fun s -> s.sink_close ()) sinks

(* ------------------------------------------------------------------ *)
(* Causal spans                                                        *)
(* ------------------------------------------------------------------ *)

(* Span ids are allocated here (per handle, dense) so both schedulers
   share one id space per trace and allocation order — and therefore
   the trace bytes — stay deterministic per seed.  Durations land in
   the "span.duration" histogram + sketch on end.  A span that never
   ends (its fiber was cancelled or captured away) just stays open;
   the checker's span-balance rule tolerates that, matching the
   cancellation model where cleanup is declined reinstatement. *)
module Span = struct
  let begin_ t ~pid ?(parent = -1) name =
    let id = t.onext_span in
    t.onext_span <- id + 1;
    Hashtbl.replace t.ospans id t.oclock;
    emit t (Event.Span_begin { pid; span = id; parent; name });
    id

  let end_ t ~pid span =
    (match Hashtbl.find_opt t.ospans span with
    | Some t0 ->
        Hashtbl.remove t.ospans span;
        Metrics.observe t.omx "span.duration" (t.oclock - t0)
    | None -> ());
    emit t (Event.Span_end { pid; span })

  let open_count t = Hashtbl.length t.ospans
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

module Sink = struct
  let of_channel oc s = output_string oc s

  let human ?(prefix = "") write =
    {
      sink_event =
        (fun ~seq:_ ~ts ev ->
          write (Printf.sprintf "%s[%6d] %s\n" prefix ts (Event.to_human ev)));
      sink_close = (fun () -> ());
    }

  let jsonl write =
    {
      sink_event =
        (fun ~seq ~ts ev -> write (Json.to_string (Event.to_json ~seq ~ts ev) ^ "\n"));
      sink_close = (fun () -> ());
    }

  (* Chrome trace-event format (JSON array flavour).  One OS-level
     "process" (pid 1); each scheduler node is a thread/track (tid =
     node id) named on first sight via a thread_name metadata record.
     Run slices are B/E duration events; everything else an instant. *)
  let chrome write =
    let first = ref true in
    let item j =
      if !first then begin
        first := false;
        write "[\n  "
      end
      else write ",\n  ";
      write (Json.to_string j)
    in
    let num v = Json.Num (float_of_int v) in
    let named = Hashtbl.create 16 in
    let ensure_name pid label =
      if not (Hashtbl.mem named pid) then begin
        Hashtbl.add named pid ();
        item
          (Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", num 1);
               ("tid", num pid);
               ("args", Json.Obj [ ("name", Json.Str label) ]);
             ])
      end
    in
    let record ~ph ~ts pid name args =
      Json.Obj
        (("name", Json.Str name)
         :: ("cat", Json.Str "pcont")
         :: ("ph", Json.Str ph)
         :: (if ph = "i" then [ ("s", Json.Str "t") ] else [])
        @ [ ("ts", num ts); ("pid", num 1); ("tid", num pid) ]
        @ (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ]))
    in
    let instant ~ts pid name args =
      ensure_name pid (Printf.sprintf "p%d" pid);
      item (record ~ph:"i" ~ts pid name args)
    in
    (* Spans map to async begin/end events (ph b/e): unlike B/E duration
       events they need no per-track nesting, which a span whose fiber
       was cancelled before the end annotation would violate.  Async
       ends must repeat the begin's name, so remember it per span id. *)
    let span_names = Hashtbl.create 16 in
    let span ~ph ~ts pid span name args =
      ensure_name pid (Printf.sprintf "p%d" pid);
      item
        (Json.Obj
           (("name", Json.Str name)
            :: ("cat", Json.Str "span")
            :: ("ph", Json.Str ph)
            :: ("id", num span)
            :: [ ("ts", num ts); ("pid", num 1); ("tid", num pid) ]
           @ (match args with [] -> [] | _ -> [ ("args", Json.Obj args) ])))
    in
    {
      sink_event =
        (fun ~seq:_ ~ts ev ->
          match ev with
          | Event.Spawn { pid; parent; kind } ->
              ensure_name pid (Printf.sprintf "%s %d" kind pid);
              instant ~ts pid "spawn"
                [ ("parent", num parent); ("kind", Json.Str kind) ]
          | Event.Spawn_batch { pid; kind; nodes } ->
              (* name every rebuilt node's track, then one instant on the
                 announcing node summarising the batch *)
              Array.iter
                (fun (p, _) -> ensure_name p (Printf.sprintf "%s %d" kind p))
                nodes;
              instant ~ts pid "spawn-batch"
                [ ("kind", Json.Str kind); ("count", num (Array.length nodes)) ]
          | Event.Exit { pid } -> instant ~ts pid "exit" []
          | Event.Slice_begin { pid } ->
              ensure_name pid (Printf.sprintf "p%d" pid);
              item (record ~ph:"B" ~ts pid "run" [])
          | Event.Slice_end { pid; fuel } ->
              item (record ~ph:"E" ~ts pid "run" [ ("fuel", num fuel) ])
          | Event.Park { pid; resource } ->
              instant ~ts pid "park" [ ("resource", Json.Str resource) ]
          | Event.Wake { pid; resource } ->
              instant ~ts pid "wake" [ ("resource", Json.Str resource) ]
          | Event.Capture { pid; label; root_pid; control_points; size } ->
              instant ~ts pid "capture"
                [
                  ("label", num label);
                  ("root_pid", num root_pid);
                  ("control_points", num control_points);
                  ("size", num size);
                ]
          | Event.Reinstate { pid; label; size } ->
              instant ~ts pid "reinstate" [ ("label", num label); ("size", num size) ]
          | Event.Send { pid; chan } -> instant ~ts pid "send" [ ("chan", num chan) ]
          | Event.Recv { pid; chan } -> instant ~ts pid "recv" [ ("chan", num chan) ]
          | Event.Cancel { pid; scope; reason; pids } ->
              instant ~ts pid "cancel"
                [
                  ("scope", num scope);
                  ("reason", Json.Str reason);
                  ("count", num (Array.length pids));
                ]
          | Event.Timeout { pid; deadline } ->
              instant ~ts pid "timeout" [ ("deadline", num deadline) ]
          | Event.Crash { pid; fault } ->
              instant ~ts (max pid 0) "crash" [ ("fault", Json.Str fault) ]
          | Event.Restart { pid; child; attempt; backoff; limit } ->
              instant ~ts pid "restart"
                [
                  ("child", num child);
                  ("attempt", num attempt);
                  ("backoff", num backoff);
                  ("limit", num limit);
                ]
          | Event.Invalid_controller { pid; label } ->
              instant ~ts pid "invalid-controller" [ ("label", num label) ]
          | Event.Deadlock { parked } ->
              instant ~ts 0 "deadlock" [ ("parked", num parked) ]
          | Event.Span_begin { pid; span = id; parent; name } ->
              Hashtbl.replace span_names id name;
              span ~ph:"b" ~ts pid id name [ ("parent", num parent) ]
          | Event.Span_end { pid; span = id } ->
              let name =
                match Hashtbl.find_opt span_names id with
                | Some n -> n
                | None -> "span"
              in
              span ~ph:"e" ~ts pid id name []);
      sink_close = (fun () -> if !first then write "[]\n" else write "\n]\n");
    }

  let memory f = { sink_event = (fun ~seq ~ts ev -> f (seq, ts, ev)); sink_close = ignore }

  (* ---- flight recorder ------------------------------------------- *)

  (* Fixed-size ring of the last [capacity] events: three array stores
     and an index bump per event, no I/O, no allocation on the hot
     path.  [dump] re-serializes the window as ordinary JSONL (original
     seq/ts stamps), so the black box feeds the same ptrace toolchain
     as a full trace.  With [flight] set, the ring dumps itself the
     moment a Deadlock or Crash event passes through — every failure
     ships its own post-mortem without anyone asking. *)
  (* The ring stores events UNBOXED: tag + int fields in int arrays, the
     occasional string field in a string array, and only the two rare
     array-carrying events (Spawn_batch, Cancel) as boxed [Event.t].  A
     boxed ring is quietly expensive: every stored event is reachable
     from a major-heap array, so it survives the next minor collection
     and is promoted — one copy plus write-barrier work per event, which
     dominated the recorder's cost.  Int stores have no barrier and
     nothing to promote, so a store is ~a handful of array writes.
     Slots are decoded back to [Event.t] only at dump time.  String and
     box slots are not cleared on overwrite (that would cost a barrier
     per event); the stale references they pin are bounded by the
     capacity. *)
  type ring = {
    rb_cap : int;
    rb_seq : int array;
    rb_ts : int array;
    rb_tag : int array;
    rb_a : int array;  (* first int field — the pid for every tag but Deadlock *)
    rb_b : int array;
    rb_c : int array;
    rb_d : int array;
    rb_e : int array;
    rb_str : string array;  (* kind/resource/fault/name, when the tag has one *)
    rb_box : Event.t array;  (* Spawn_batch / Cancel, stored whole *)
    mutable rb_n : int;  (* events ever stored; head = rb_n mod rb_cap *)
    mutable rb_head : int;  (* next store index, kept = rb_n mod rb_cap *)
    rb_flight : (string -> unit) option;
    mutable rb_dumps : int;
  }

  let ring_dummy = Event.Deadlock { parked = 0 }

  let ring ?(capacity = 4096) ?flight () =
    if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
    {
      rb_cap = capacity;
      rb_seq = Array.make capacity 0;
      rb_ts = Array.make capacity 0;
      rb_tag = Array.make capacity 0;
      rb_a = Array.make capacity 0;
      rb_b = Array.make capacity 0;
      rb_c = Array.make capacity 0;
      rb_d = Array.make capacity 0;
      rb_e = Array.make capacity 0;
      rb_str = Array.make capacity "";
      rb_box = Array.make capacity ring_dummy;
      rb_n = 0;
      rb_head = 0;
      rb_flight = flight;
      rb_dumps = 0;
    }

  let ring_store r ~seq ~ts ev =
    let i = r.rb_head in
    r.rb_seq.(i) <- seq;
    r.rb_ts.(i) <- ts;
    (match ev with
    | Event.Slice_begin { pid } ->
        r.rb_tag.(i) <- 0;
        r.rb_a.(i) <- pid
    | Event.Slice_end { pid; fuel } ->
        r.rb_tag.(i) <- 1;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- fuel
    | Event.Spawn { pid; parent; kind } ->
        r.rb_tag.(i) <- 2;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- parent;
        r.rb_str.(i) <- kind
    | Event.Exit { pid } ->
        r.rb_tag.(i) <- 3;
        r.rb_a.(i) <- pid
    | Event.Park { pid; resource } ->
        r.rb_tag.(i) <- 4;
        r.rb_a.(i) <- pid;
        r.rb_str.(i) <- resource
    | Event.Wake { pid; resource } ->
        r.rb_tag.(i) <- 5;
        r.rb_a.(i) <- pid;
        r.rb_str.(i) <- resource
    | Event.Capture { pid; label; root_pid; control_points; size } ->
        r.rb_tag.(i) <- 6;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- label;
        r.rb_c.(i) <- root_pid;
        r.rb_d.(i) <- control_points;
        r.rb_e.(i) <- size
    | Event.Reinstate { pid; label; size } ->
        r.rb_tag.(i) <- 7;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- label;
        r.rb_c.(i) <- size
    | Event.Send { pid; chan } ->
        r.rb_tag.(i) <- 8;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- chan
    | Event.Recv { pid; chan } ->
        r.rb_tag.(i) <- 9;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- chan
    | Event.Timeout { pid; deadline } ->
        r.rb_tag.(i) <- 10;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- deadline
    | Event.Crash { pid; fault } ->
        r.rb_tag.(i) <- 11;
        r.rb_a.(i) <- pid;
        r.rb_str.(i) <- fault
    | Event.Restart { pid; child; attempt; backoff; limit } ->
        r.rb_tag.(i) <- 12;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- child;
        r.rb_c.(i) <- attempt;
        r.rb_d.(i) <- backoff;
        r.rb_e.(i) <- limit
    | Event.Invalid_controller { pid; label } ->
        r.rb_tag.(i) <- 13;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- label
    | Event.Deadlock { parked } ->
        r.rb_tag.(i) <- 14;
        r.rb_a.(i) <- parked
    | Event.Span_begin { pid; span; parent; name } ->
        r.rb_tag.(i) <- 15;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- span;
        r.rb_c.(i) <- parent;
        r.rb_str.(i) <- name
    | Event.Span_end { pid; span } ->
        r.rb_tag.(i) <- 16;
        r.rb_a.(i) <- pid;
        r.rb_b.(i) <- span
    | (Event.Spawn_batch _ | Event.Cancel _) as boxed ->
        r.rb_tag.(i) <- 17;
        r.rb_box.(i) <- boxed);
    r.rb_head <- (if i + 1 = r.rb_cap then 0 else i + 1);
    r.rb_n <- r.rb_n + 1

  let ring_decode r i =
    match r.rb_tag.(i) with
    | 0 -> Event.Slice_begin { pid = r.rb_a.(i) }
    | 1 -> Event.Slice_end { pid = r.rb_a.(i); fuel = r.rb_b.(i) }
    | 2 ->
        Event.Spawn { pid = r.rb_a.(i); parent = r.rb_b.(i); kind = r.rb_str.(i) }
    | 3 -> Event.Exit { pid = r.rb_a.(i) }
    | 4 -> Event.Park { pid = r.rb_a.(i); resource = r.rb_str.(i) }
    | 5 -> Event.Wake { pid = r.rb_a.(i); resource = r.rb_str.(i) }
    | 6 ->
        Event.Capture
          {
            pid = r.rb_a.(i);
            label = r.rb_b.(i);
            root_pid = r.rb_c.(i);
            control_points = r.rb_d.(i);
            size = r.rb_e.(i);
          }
    | 7 ->
        Event.Reinstate { pid = r.rb_a.(i); label = r.rb_b.(i); size = r.rb_c.(i) }
    | 8 -> Event.Send { pid = r.rb_a.(i); chan = r.rb_b.(i) }
    | 9 -> Event.Recv { pid = r.rb_a.(i); chan = r.rb_b.(i) }
    | 10 -> Event.Timeout { pid = r.rb_a.(i); deadline = r.rb_b.(i) }
    | 11 -> Event.Crash { pid = r.rb_a.(i); fault = r.rb_str.(i) }
    | 12 ->
        Event.Restart
          {
            pid = r.rb_a.(i);
            child = r.rb_b.(i);
            attempt = r.rb_c.(i);
            backoff = r.rb_d.(i);
            limit = r.rb_e.(i);
          }
    | 13 -> Event.Invalid_controller { pid = r.rb_a.(i); label = r.rb_b.(i) }
    | 14 -> Event.Deadlock { parked = r.rb_a.(i) }
    | 15 ->
        Event.Span_begin
          {
            pid = r.rb_a.(i);
            span = r.rb_b.(i);
            parent = r.rb_c.(i);
            name = r.rb_str.(i);
          }
    | 16 -> Event.Span_end { pid = r.rb_a.(i); span = r.rb_b.(i) }
    | _ -> r.rb_box.(i)

  let ring_stored r = if r.rb_n < r.rb_cap then r.rb_n else r.rb_cap

  let ring_dropped r = if r.rb_n > r.rb_cap then r.rb_n - r.rb_cap else 0

  let ring_iter r f =
    let len = ring_stored r in
    let start = r.rb_n - len in
    for k = 0 to len - 1 do
      let i = (start + k) mod r.rb_cap in
      f ~seq:r.rb_seq.(i) ~ts:r.rb_ts.(i) (ring_decode r i)
    done

  let ring_dump r write =
    ring_iter r (fun ~seq ~ts ev ->
        write (Json.to_string (Event.to_json ~seq ~ts ev) ^ "\n"))

  let ring_flight_dump r =
    match r.rb_flight with
    | None -> ()
    | Some flight ->
        let buf = Buffer.create 4096 in
        ring_dump r (Buffer.add_string buf);
        r.rb_dumps <- r.rb_dumps + 1;
        flight (Buffer.contents buf)

  let ring_dumps r = r.rb_dumps

  let ring_sink r =
    {
      sink_event =
        (fun ~seq ~ts ev ->
          ring_store r ~seq ~ts ev;
          match ev with
          | Event.Deadlock _ | Event.Crash _ -> ring_flight_dump r
          | _ -> ());
      sink_close = (fun () -> ());
    }

  (* ---- deterministic head sampling ------------------------------- *)

  (* Per-fiber head sampling: the keep/drop decision is made once per
     pid, from a splitmix hash of (seed, pid) — a PRNG stream derived
     from the run seed but independent of the scheduler's own draws, so
     attaching a sampler can never perturb scheduling, and the sampled
     trace is byte-identical for a given seed + rate on either
     scheduler.  Structural events (spawn/exit/capture/cancel/...)
     always pass so the process tree stays reconstructable; per-fiber
     detail (slices, parks, wakes, sends, recvs, spans) passes only for
     sampled fibers.  Original seq stamps are kept: gaps tell the
     consumer exactly what sampling dropped. *)
  let sampled ~seed ~rate inner =
    let rate = if rate < 0. then 0. else if rate > 1. then 1. else rate in
    let threshold = int_of_float (rate *. 1073741824.) in
    let decided = Hashtbl.create 64 in
    let keep pid =
      if pid < 0 then true
      else
        match Hashtbl.find_opt decided pid with
        | Some b -> b
        | None ->
            let h =
              Int64.add seed
                (Int64.mul (Int64.of_int (pid + 1)) 0x9E3779B97F4A7C15L)
            in
            let h = Int64.logxor h (Int64.shift_right_logical h 30) in
            let h = Int64.mul h 0xBF58476D1CE4E5B9L in
            let h = Int64.logxor h (Int64.shift_right_logical h 27) in
            let h = Int64.mul h 0x94D049BB133111EBL in
            let h = Int64.logxor h (Int64.shift_right_logical h 31) in
            let b = Int64.to_int (Int64.logand h 0x3FFFFFFFL) < threshold in
            Hashtbl.add decided pid b;
            b
    in
    {
      sink_event =
        (fun ~seq ~ts ev ->
          let forward =
            match ev with
            | Event.Slice_begin { pid }
            | Event.Slice_end { pid; _ }
            | Event.Park { pid; _ }
            | Event.Wake { pid; _ }
            | Event.Send { pid; _ }
            | Event.Recv { pid; _ }
            | Event.Span_begin { pid; _ }
            | Event.Span_end { pid; _ } ->
                keep pid
            | _ -> true
          in
          if forward then inner.sink_event ~seq ~ts ev);
      sink_close = inner.sink_close;
    }
end

(* ------------------------------------------------------------------ *)
(* Per-process summary                                                 *)
(* ------------------------------------------------------------------ *)

module Summary = struct
  type row = {
    mutable r_kind : string;
    mutable r_slices : int;
    mutable r_fuel : int;
    mutable r_parks : int;
    mutable r_wakes : int;
    mutable r_captures : int;
    mutable r_reinstates : int;
    mutable r_sends : int;
    mutable r_recvs : int;
    mutable r_exits : int;
    mutable r_fate : string;
        (* "" for a normal exit; "cancelled", "timed-out", "crashed" or
           "restarted" otherwise (restarted > crashed > timed-out/
           cancelled when several apply) *)
  }

  type t = {
    s_rows : (int, row) Hashtbl.t;
    mutable s_deadlock : int option;  (* parked count of the last deadlock *)
    mutable s_cancelled_parked : int;
        (* fibers that were parked at the moment a cancel discarded them *)
  }

  let create () : t =
    { s_rows = Hashtbl.create 16; s_deadlock = None; s_cancelled_parked = 0 }

  let row t pid =
    match Hashtbl.find_opt t.s_rows pid with
    | Some r -> r
    | None ->
        let r =
          {
            r_kind = "?";
            r_slices = 0;
            r_fuel = 0;
            r_parks = 0;
            r_wakes = 0;
            r_captures = 0;
            r_reinstates = 0;
            r_sends = 0;
            r_recvs = 0;
            r_exits = 0;
            r_fate = "";
          }
        in
        Hashtbl.add t.s_rows pid r;
        r

  let sink t =
    {
      sink_event =
        (fun ~seq:_ ~ts:_ ev ->
          match ev with
          | Event.Spawn { pid; kind; _ } ->
              let r = row t pid in
              r.r_kind <- kind
          | Event.Spawn_batch { kind; nodes; _ } ->
              Array.iter
                (fun (p, _) ->
                  let r = row t p in
                  r.r_kind <- kind)
                nodes
          | Event.Exit { pid } ->
              let r = row t pid in
              r.r_exits <- r.r_exits + 1
          | Event.Slice_end { pid; fuel } ->
              let r = row t pid in
              r.r_slices <- r.r_slices + 1;
              r.r_fuel <- r.r_fuel + fuel
          | Event.Park { pid; _ } ->
              let r = row t pid in
              r.r_parks <- r.r_parks + 1
          | Event.Wake { pid; _ } ->
              let r = row t pid in
              r.r_wakes <- r.r_wakes + 1
          | Event.Capture { pid; _ } ->
              let r = row t pid in
              r.r_captures <- r.r_captures + 1
          | Event.Reinstate { pid; _ } ->
              let r = row t pid in
              r.r_reinstates <- r.r_reinstates + 1
          | Event.Send { pid; _ } ->
              let r = row t pid in
              r.r_sends <- r.r_sends + 1
          | Event.Recv { pid; _ } ->
              let r = row t pid in
              r.r_recvs <- r.r_recvs + 1
          | Event.Cancel { reason; pids; _ } ->
              (* A cancel whose reason mentions "timeout" is a deadline
                 firing (Resil.with_timeout / with_deadline cancel with
                 reason "timeout", which abort renders as
                 "cancel: timeout"): those fibers get the distinct
                 [timed-out] fate so SLO rollups can tell a deadline
                 kill from an ordinary cancellation. *)
              let fate =
                let sub = "timeout" and n = String.length reason in
                let rec has i =
                  i + 7 <= n && (String.sub reason i 7 = sub || has (i + 1))
                in
                if has 0 then "timed-out" else "cancelled"
              in
              Array.iter
                (fun p ->
                  let r = row t p in
                  if r.r_parks > r.r_wakes then
                    t.s_cancelled_parked <- t.s_cancelled_parked + 1;
                  if r.r_fate = "" then r.r_fate <- fate)
                pids
          | Event.Crash { pid; _ } ->
              if pid >= 0 then begin
                let r = row t pid in
                if r.r_fate <> "restarted" then r.r_fate <- "crashed"
              end
          | Event.Restart { child; _ } ->
              let r = row t child in
              r.r_fate <- "restarted"
          | Event.Deadlock { parked } -> t.s_deadlock <- Some parked
          | Event.Slice_begin _ | Event.Timeout _ | Event.Invalid_controller _
          | Event.Span_begin _ | Event.Span_end _ ->
              ());
      sink_close = (fun () -> ());
    }

  let rows t =
    Hashtbl.fold (fun pid r acc -> (pid, r) :: acc) t.s_rows []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let deadlock t = t.s_deadlock
  let cancelled_parked t = t.s_cancelled_parked

  let pp ppf t =
    Format.fprintf ppf "@[<v>%8s %-10s %8s %10s %7s %7s %9s %7s %7s %7s %9s" "pid"
      "kind" "slices" "fuel" "parks" "wakes" "captures" "grafts" "sends" "recvs"
      "exits";
    List.iter
      (fun (pid, r) ->
        (* the exits cell distinguishes cancelled/crashed/restarted fates
           from normal exit counts *)
        let exits =
          if r.r_fate = "" then string_of_int r.r_exits else r.r_fate
        in
        Format.fprintf ppf "@,%8d %-10s %8d %10d %7d %7d %9d %7d %7d %7d %9s" pid
          r.r_kind r.r_slices r.r_fuel r.r_parks r.r_wakes r.r_captures
          r.r_reinstates r.r_sends r.r_recvs exits)
      (rows t);
    (match t.s_deadlock with
    | None -> ()
    | Some parked ->
        Format.fprintf ppf "@,deadlock: %d process(es) left parked" parked;
        if t.s_cancelled_parked > 0 then
          Format.fprintf ppf " (+%d cancelled while parked)"
            t.s_cancelled_parked);
    Format.fprintf ppf "@]"
end
