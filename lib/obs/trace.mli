(** Re-ingestion of exported JSONL traces.

    [Obs.Sink.jsonl] writes one stamped event per line; this module reads
    that format back into typed {!Obs.Event.t} values, splits a trace
    into runs (a [psi] session traces one run per top-level form, with
    global [seq]/[ts] but per-run pids), and reconstructs each run's
    process tree with per-node timelines — the substrate for
    {!Analysis}'s checker, causal report and diff.

    Parsing is tolerant: any well-formed line is accepted even when the
    event stream it describes is inconsistent (that is {!Analysis.Check}'s
    job), but unknown event tags, missing fields and malformed JSON are
    reported with their line number. *)

type stamped = { seq : int; ts : int; ev : Obs.Event.t }
(** One trace line: the event plus its stamp. *)

val event_of_json : Obs.Json.t -> (stamped, string) result
(** Invert {!Obs.Event.to_json}.  Numeric fields must be integral;
    extra fields are ignored. *)

val to_json : stamped -> Obs.Json.t
(** [to_json s] is [Obs.Event.to_json ~seq:s.seq ~ts:s.ts s.ev]. *)

val parse_string : string -> (stamped array, string) result
(** Parse a JSONL trace body.  Blank lines are skipped; the first
    malformed line fails the whole parse with a [line N: ...] message. *)

val load : string -> (stamped array, string) result
(** [parse_string] over a file's contents ([Error] on IO failure). *)

(** {1 Runs}

    A run starts at a root spawn ([Spawn { parent = -1; _ }]) and
    extends to the next root spawn or the end of the trace. *)

val runs : stamped array -> stamped array array
(** Split a trace into runs.  Events before the first root spawn (never
    produced by the sinks) are grouped into a leading run of their own. *)

(** {1 Process-tree reconstruction} *)

type node = {
  n_pid : int;
  n_parent : int;  (** [-1] for the root *)
  n_kind : string;
  n_spawn_ts : int;
  mutable n_children : int list;  (** pids, in spawn order *)
  mutable n_exit_ts : int option;
  mutable n_pruned_ts : int option;
      (** set when an ancestor's capture pruned this node *)
  mutable n_slices : int;
  mutable n_run : int;  (** total virtual time inside run slices *)
  mutable n_fuel : int;
  mutable n_parks : int;
  mutable n_wakes : int;
  mutable n_captures : int;
  mutable n_reinstates : int;
  mutable n_sends : int;
  mutable n_recvs : int;
  mutable n_blocked : (string * int) list;
      (** virtual time parked, per resource, park-order; a park cut
          short by a capture-prune or the end of the run still counts
          up to that point *)
}

type slice = {
  sl_pid : int;
  sl_begin : int;  (** index of the [Slice_begin] event in [r_events] *)
  sl_end : int;  (** index of the matching [Slice_end] *)
  sl_begin_ts : int;
  sl_end_ts : int;
}

type run = {
  r_events : stamped array;
  r_nodes : node array;  (** sorted by pid *)
  r_slices : slice array;  (** in begin order *)
  r_actor : int array;
      (** for each event index, the index in [r_slices] of the slice
          open at that event, or [-1] when none is (root spawn,
          deadlock, events between runs) *)
  r_first_ts : int;
  r_span : int;  (** last ts − first ts *)
  r_deadlock : int option;
}

val node_of : run -> int -> node option

val reconstruct : stamped array -> run
(** Build the tree and timelines for one run (one element of {!runs}).
    Tolerant of inconsistent streams: unmatched slice ends, unknown
    pids and double wakes are skipped rather than raised — run
    {!Analysis.Check} to surface them. *)

val blocked_total : run -> (string * int) list
(** Total parked virtual time per resource, sorted by resource name. *)

val schedule : run -> int array
(** The run's schedule: the pid of each slice in begin order.  Under a
    one-decision-per-slice policy ([Driven]/[Driven_pids]) this is
    exactly the sequence of scheduler decisions, so feeding it back
    through [Driven_pids] replays the run (see [Pcont_explore]). *)
